package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Request-level span tracing.  A Tracer records one SpanTrace per
// sampled request; each trace carries child spans for every hop the
// request took through the decision path (client-cache probe,
// directory lookup, P2P fetch, proxy hit, origin fetch), tagged with
// the netmodel latency component (Ts/Tc/Tl/Tp2p) the hop is charged
// under.  The same contract as the rest of obs applies: a nil *Tracer
// (and the nil *SpanTrace / *SpanHandle it hands out) ignores every
// call at zero cost — no allocation, no clock read — so the replay
// loop and the HTTP handlers stay instrumented unconditionally
// (asserted in trace_test.go).
//
// Two clocks:
//
//   - ClockVirtual: the caller supplies start offsets and durations in
//     the simulator's normalized latency units (Tl = 1).  Span and
//     Finish take explicit durations; spans are laid out end-to-end.
//   - ClockWall: real time.  StartSpan/End measure wall durations in
//     seconds relative to the tracer's epoch, so traces from separate
//     daemons sharing an epoch line up.
//
// Sampling is head-based: StartTrace keeps every SampleEvery-th root
// request (and drops the rest before any work happens), while
// StartTraceID — the propagated form used when an upstream hop already
// decided to trace, carried across processes in the
// httpcache.TraceHeader — always records, so a sampled request yields
// spans at every hop it touches.

// TraceClock selects the time base a Tracer records in.
type TraceClock int

const (
	// ClockVirtual uses caller-supplied offsets/durations in the
	// simulator's normalized latency units.
	ClockVirtual TraceClock = iota
	// ClockWall uses real elapsed time, in seconds since the tracer's
	// epoch.
	ClockWall
)

// TracerOptions configures NewTracer.
type TracerOptions struct {
	// Origin prefixes generated trace IDs ("sim", "proxy:8081", ...).
	Origin string
	// SampleEvery keeps 1 in N root traces; 0 or 1 keeps all, and
	// SampleNever (any negative value) disables root sampling entirely:
	// the tracer records only joined traces (StartTraceID), the
	// join-only collector a bench hangs off its daemons so every
	// retained hop belongs to a driver-sampled request.
	SampleEvery int
	// Limit caps retained traces (head-based: the first Limit sampled
	// traces are kept, later ones counted as dropped).  <= 0 means the
	// default of 10000.
	Limit int
	// Clock selects virtual or wall time.
	Clock TraceClock
}

// DefaultTraceLimit is the retained-trace cap when TracerOptions.Limit
// is unset.
const DefaultTraceLimit = 10000

// SampleNever, as TracerOptions.SampleEvery, makes a join-only tracer.
const SampleNever = -1

// Tracer collects sampled request traces.  All methods are safe for
// concurrent use; a nil *Tracer is the disabled tracer.
type Tracer struct {
	opts  TracerOptions
	epoch time.Time

	seq     atomic.Int64 // root-trace sampling counter
	ids     atomic.Int64 // trace-id generator
	dropped atomic.Int64

	mu     sync.Mutex
	traces []*SpanTrace
}

// NewTracer creates an enabled tracer.
func NewTracer(opts TracerOptions) *Tracer {
	if opts.SampleEvery < 0 {
		opts.SampleEvery = SampleNever
	} else if opts.SampleEvery < 1 {
		opts.SampleEvery = 1
	}
	if opts.Limit <= 0 {
		opts.Limit = DefaultTraceLimit
	}
	if opts.Origin == "" {
		opts.Origin = "trace"
	}
	return &Tracer{opts: opts, epoch: time.Now()}
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Span is one hop in a trace.  Start/Dur are in the tracer's time base
// (virtual units, or seconds for ClockWall).
type Span struct {
	Name      string  `json:"name"`
	Component string  `json:"component,omitempty"` // netmodel component: Ts, Tc, Tl, Tp2p
	Start     float64 `json:"start"`
	Dur       float64 `json:"dur"`
	// Wasted marks latency charged to a miss on the decision path — a
	// Bloom false-positive probe, a stale digest probe — rather than
	// to the serving hop itself.
	Wasted bool `json:"wasted,omitempty"`
}

// SpanTrace is one sampled request's trace.  Methods are safe for
// concurrent use; a nil *SpanTrace ignores everything.
type SpanTrace struct {
	ID       string  `json:"id"`
	Name     string  `json:"name"`
	Tier     string  `json:"tier,omitempty"` // serving tier, set by Finish
	Start    float64 `json:"start"`
	Dur      float64 `json:"dur"`
	Root     bool    `json:"root"`
	Finished bool    `json:"finished"`
	Spans    []Span  `json:"spans,omitempty"`

	// live holds the recording state (lock, cursor, clock).  It is a
	// pointer so SpanTrace snapshot values (live == nil) copy freely;
	// only tracer-created traces record through it.
	live *traceState
}

// traceState is the mutable recording side of an in-flight SpanTrace.
type traceState struct {
	tracer    *Tracer
	mu        sync.Mutex
	cursor    float64 // next virtual span's start offset
	wallStart time.Time
}

// add appends a trace if the retention limit allows it.
func (t *Tracer) add(st *SpanTrace) *SpanTrace {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.traces) >= t.opts.Limit {
		t.dropped.Add(1)
		return nil
	}
	t.traces = append(t.traces, st)
	return st
}

// StartTrace begins a new root trace for one request, or returns nil
// when the request is not sampled (or the tracer is disabled or full).
// start is the trace's start offset in virtual units; ignored under
// ClockWall, where the epoch-relative wall offset is recorded instead.
func (t *Tracer) StartTrace(name string, start float64) *SpanTrace {
	if t == nil {
		return nil
	}
	if t.opts.SampleEvery == SampleNever {
		return nil
	}
	if n := t.seq.Add(1); t.opts.SampleEvery > 1 && (n-1)%int64(t.opts.SampleEvery) != 0 {
		return nil
	}
	st := &SpanTrace{
		ID:    fmt.Sprintf("%s-%d", t.opts.Origin, t.ids.Add(1)),
		Name:  name,
		Start: start,
		Root:  true,
		live:  &traceState{tracer: t},
	}
	if t.opts.Clock == ClockWall {
		st.live.wallStart = time.Now()
		st.Start = st.live.wallStart.Sub(t.epoch).Seconds()
	}
	return t.add(st)
}

// StartTraceID joins a trace an upstream hop already sampled: the ID
// is the propagated one and no sampling decision is made (the edge
// made it).  Returns nil only when disabled or full.
func (t *Tracer) StartTraceID(id, name string) *SpanTrace {
	if t == nil || id == "" {
		return nil
	}
	st := &SpanTrace{
		ID:   id,
		Name: name,
		Root: false,
		live: &traceState{tracer: t},
	}
	if t.opts.Clock == ClockWall {
		st.live.wallStart = time.Now()
		st.Start = st.live.wallStart.Sub(t.epoch).Seconds()
	}
	return t.add(st)
}

// TraceID returns the trace's propagatable ID ("" on nil, so callers
// set headers unconditionally).
func (st *SpanTrace) TraceID() string {
	if st == nil {
		return ""
	}
	return st.ID
}

// Span appends a virtual-clock span of the given duration at the
// current cursor and advances the cursor, laying hops end-to-end.
func (st *SpanTrace) Span(name, component string, dur float64) {
	if st == nil {
		return
	}
	st.live.mu.Lock()
	st.Spans = append(st.Spans, Span{Name: name, Component: component, Start: st.Start + st.live.cursor, Dur: dur})
	st.live.cursor += dur
	st.live.mu.Unlock()
}

// WastedSpan is Span with the wasted-work flag: latency charged to a
// false positive or stale probe on the decision path.
func (st *SpanTrace) WastedSpan(name, component string, dur float64) {
	if st == nil {
		return
	}
	st.live.mu.Lock()
	st.Spans = append(st.Spans, Span{Name: name, Component: component, Start: st.Start + st.live.cursor, Dur: dur, Wasted: true})
	st.live.cursor += dur
	st.live.mu.Unlock()
}

// Finish completes a virtual-clock trace: the serving tier and the
// total charged latency.
func (st *SpanTrace) Finish(tier string, total float64) {
	if st == nil {
		return
	}
	st.live.mu.Lock()
	st.Tier = tier
	st.Dur = total
	st.Finished = true
	st.live.mu.Unlock()
}

// SpanHandle is an open wall-clock span; End (or EndWasted) closes it.
// A nil handle ignores both.
type SpanHandle struct {
	st        *SpanTrace
	name      string
	component string
	start     time.Time
}

// StartSpan opens a wall-clock span.
func (st *SpanTrace) StartSpan(name, component string) *SpanHandle {
	if st == nil {
		return nil
	}
	return &SpanHandle{st: st, name: name, component: component, start: time.Now()}
}

func (h *SpanHandle) end(wasted bool) {
	if h == nil {
		return
	}
	st := h.st
	start := h.start.Sub(st.live.tracer.epoch).Seconds()
	dur := time.Since(h.start).Seconds()
	st.live.mu.Lock()
	st.Spans = append(st.Spans, Span{Name: h.name, Component: h.component, Start: start, Dur: dur, Wasted: wasted})
	st.live.mu.Unlock()
}

// End closes the span.
func (h *SpanHandle) End() { h.end(false) }

// EndWasted closes the span and marks it wasted work (a probe that
// did not serve the request).
func (h *SpanHandle) EndWasted() { h.end(true) }

// FinishWall completes a wall-clock trace with the serving tier; the
// duration is wall time since the trace started.
func (st *SpanTrace) FinishWall(tier string) {
	if st == nil {
		return
	}
	d := time.Since(st.live.wallStart).Seconds()
	st.live.mu.Lock()
	st.Tier = tier
	st.Dur = d
	st.Finished = true
	st.live.mu.Unlock()
}

// snapshot copies the trace under its lock; the copy has no recording
// state (live == nil) and is a plain value.
func (st *SpanTrace) snapshot() SpanTrace {
	st.live.mu.Lock()
	defer st.live.mu.Unlock()
	cp := SpanTrace{
		ID: st.ID, Name: st.Name, Tier: st.Tier,
		Start: st.Start, Dur: st.Dur, Root: st.Root,
		Finished: st.Finished,
	}
	cp.Spans = append(cp.Spans, st.Spans...)
	return cp
}

// snapshots copies the retained trace list and each trace.
func (t *Tracer) snapshots() []SpanTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	list := append([]*SpanTrace(nil), t.traces...)
	t.mu.Unlock()
	out := make([]SpanTrace, len(list))
	for i, st := range list {
		out[i] = st.snapshot()
	}
	return out
}

// Snapshots returns a deep copy of every retained trace (exports and
// tests; nil tracer returns nil).
func (t *Tracer) Snapshots() []SpanTrace { return t.snapshots() }

// Len returns the number of retained traces.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.traces)
}

// Dropped returns the number of sampled traces lost to the retention
// limit.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// PublishMetrics folds the tracer's totals into a registry under the
// trace.* namespace.
func (t *Tracer) PublishMetrics(reg *Registry) {
	if t == nil || reg == nil {
		return
	}
	snaps := t.snapshots()
	var roots, joined, spans int64
	for i := range snaps {
		if snaps[i].Root {
			roots++
		} else {
			joined++
		}
		spans += int64(len(snaps[i].Spans))
	}
	reg.Counter("trace.sampled").Add(roots)
	reg.Counter("trace.joined").Add(joined)
	reg.Counter("trace.spans").Add(spans)
	reg.Counter("trace.dropped").Add(t.dropped.Load())
}

// chromeEvent is one Chrome trace-event ("Trace Event Format",
// Perfetto-loadable) complete event.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeScale converts the tracer's time base to Chrome's
// microseconds: wall seconds scale by 1e6; virtual units also scale by
// 1e6, so one normalized latency unit (Tl = 1) renders as one second
// on the Perfetto timeline.
const chromeScale = 1e6

// WriteChrome writes every retained trace as Chrome trace-event JSON
// ({"traceEvents": [...]}).  Each trace gets its own tid track: one
// enclosing event for the request plus one event per span, with the
// component tag as the category and wasted/tier/trace-id in args.
func (t *Tracer) WriteChrome(w io.Writer) error {
	return WriteChromeTraces(w, t.snapshots())
}

// WriteChromeTraces writes the given traces as one Chrome trace-event
// JSON document.  This is the merge point for multi-collector runs: a
// bench passes the driver's sampled roots together with the daemons'
// joined hop traces, and Perfetto shows each as its own track.  Traces
// are emitted grouped by trace id (roots first), so a request's hops
// land on adjacent tracks.
func WriteChromeTraces(w io.Writer, traces []SpanTrace) error {
	traces = groupByTraceID(traces)
	events := []chromeEvent{}
	for i, st := range traces {
		tid := i + 1
		args := map[string]any{"trace": st.ID}
		if st.Tier != "" {
			args["tier"] = st.Tier
		}
		events = append(events, chromeEvent{
			Name: st.Name, Cat: "request", Ph: "X",
			Ts: st.Start * chromeScale, Dur: st.Dur * chromeScale,
			Pid: 1, Tid: tid, Args: args,
		})
		for _, sp := range st.Spans {
			cat := sp.Component
			if cat == "" {
				cat = "span"
			}
			a := map[string]any{"trace": st.ID}
			if sp.Component != "" {
				a["component"] = sp.Component
			}
			if sp.Wasted {
				a["wasted"] = true
			}
			events = append(events, chromeEvent{
				Name: sp.Name, Cat: cat, Ph: "X",
				Ts: sp.Start * chromeScale, Dur: sp.Dur * chromeScale,
				Pid: 1, Tid: tid, Args: a,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}

// WriteJSONL writes one JSON object per retained trace, one per line —
// the grep/jq-friendly export.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	return WriteJSONLTraces(w, t.snapshots())
}

// WriteJSONLTraces writes the given traces as JSONL, grouped by trace
// id with roots first (see WriteChromeTraces).
func WriteJSONLTraces(w io.Writer, traces []SpanTrace) error {
	traces = groupByTraceID(traces)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, st := range traces {
		if err := enc.Encode(&st); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// groupByTraceID stably sorts traces so records sharing an id are
// adjacent, the root hop leading.  Ordering across ids preserves
// first-appearance order (collection order), not lexicographic id
// order.
func groupByTraceID(traces []SpanTrace) []SpanTrace {
	order := make(map[string]int, len(traces))
	for _, st := range traces {
		if _, ok := order[st.ID]; !ok {
			order[st.ID] = len(order)
		}
	}
	out := make([]SpanTrace, len(traces))
	copy(out, traces)
	sort.SliceStable(out, func(i, j int) bool {
		oi, oj := order[out[i].ID], order[out[j].ID]
		if oi != oj {
			return oi < oj
		}
		return out[i].Root && !out[j].Root
	})
	return out
}

// WriteChromeFile / WriteJSONLFile write the export to a file.
func (t *Tracer) WriteChromeFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (t *Tracer) WriteJSONLFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ValidateChromeTrace checks that data is well-formed Chrome
// trace-event JSON as Perfetto's legacy loader expects it: a
// traceEvents array of complete events with name/ph/ts/dur/pid/tid.
func ValidateChromeTrace(data []byte) error {
	var doc struct {
		TraceEvents []struct {
			Name *string  `json:"name"`
			Ph   string   `json:"ph"`
			Ts   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
			Pid  *int     `json:"pid"`
			Tid  *int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("chrome trace: %w", err)
	}
	if doc.TraceEvents == nil {
		return fmt.Errorf("chrome trace: missing traceEvents array")
	}
	for i, ev := range doc.TraceEvents {
		switch {
		case ev.Name == nil || *ev.Name == "":
			return fmt.Errorf("chrome trace: event %d: missing name", i)
		case ev.Ph != "X":
			return fmt.Errorf("chrome trace: event %d: phase %q (want complete event \"X\")", i, ev.Ph)
		case ev.Ts == nil || math.IsNaN(*ev.Ts) || math.IsInf(*ev.Ts, 0):
			return fmt.Errorf("chrome trace: event %d: bad ts", i)
		case ev.Dur == nil || *ev.Dur < 0 || math.IsNaN(*ev.Dur) || math.IsInf(*ev.Dur, 0):
			return fmt.Errorf("chrome trace: event %d: bad dur", i)
		case ev.Pid == nil || ev.Tid == nil:
			return fmt.Errorf("chrome trace: event %d: missing pid/tid", i)
		}
	}
	return nil
}

// TierDecomp is one serving tier's row in a latency decomposition.
type TierDecomp struct {
	Tier     string  `json:"tier"`
	Requests int     `json:"requests"`
	Total    float64 `json:"total"`  // summed trace durations
	Wasted   float64 `json:"wasted"` // summed wasted-span durations
	// SpanTotal sums every span duration (wasted included); when spans
	// fully account the trace it equals Total.
	SpanTotal  float64            `json:"span_total"`
	Components map[string]float64 `json:"components,omitempty"` // per netmodel component
}

// Mean is the mean end-to-end latency for the tier.
func (d *TierDecomp) Mean() float64 {
	if d.Requests == 0 {
		return 0
	}
	return d.Total / float64(d.Requests)
}

// MeanServed is the mean latency excluding wasted probe work — the
// quantity the netmodel analytic per-tier latency predicts.
func (d *TierDecomp) MeanServed() float64 {
	if d.Requests == 0 {
		return 0
	}
	return (d.Total - d.Wasted) / float64(d.Requests)
}

// Decomposition is the per-tier latency breakdown folded from sampled
// spans.
type Decomposition struct {
	Tiers []*TierDecomp `json:"tiers"` // sorted by tier name
}

// Tier returns the named row (nil if absent).
func (d *Decomposition) Tier(name string) *TierDecomp {
	if d == nil {
		return nil
	}
	for _, td := range d.Tiers {
		if td.Tier == name {
			return td
		}
	}
	return nil
}

// Decompose folds every finished root trace into a per-tier latency
// decomposition: request counts, total/mean latency, wasted probe
// latency, and per-component (Ts/Tc/Tl/Tp2p) sums.
func (t *Tracer) Decompose() *Decomposition {
	rows := map[string]*TierDecomp{}
	for _, st := range t.snapshots() {
		if !st.Root || !st.Finished || st.Tier == "" {
			continue
		}
		td := rows[st.Tier]
		if td == nil {
			td = &TierDecomp{Tier: st.Tier, Components: map[string]float64{}}
			rows[st.Tier] = td
		}
		td.Requests++
		td.Total += st.Dur
		for _, sp := range st.Spans {
			td.SpanTotal += sp.Dur
			if sp.Wasted {
				td.Wasted += sp.Dur
			}
			if sp.Component != "" {
				td.Components[sp.Component] += sp.Dur
			}
		}
	}
	d := &Decomposition{}
	for _, td := range rows {
		d.Tiers = append(d.Tiers, td)
	}
	sort.Slice(d.Tiers, func(i, j int) bool { return d.Tiers[i].Tier < d.Tiers[j].Tier })
	return d
}

// Table renders the decomposition as an aligned text table.
func (d *Decomposition) Table() string {
	if d == nil || len(d.Tiers) == 0 {
		return ""
	}
	comps := map[string]bool{}
	for _, td := range d.Tiers {
		for c := range td.Components {
			comps[c] = true
		}
	}
	order := make([]string, 0, len(comps))
	for c := range comps {
		order = append(order, c)
	}
	sort.Strings(order)

	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %9s %12s %12s %12s", "tier", "requests", "mean", "served", "wasted")
	for _, c := range order {
		fmt.Fprintf(&b, " %12s", c)
	}
	b.WriteByte('\n')
	for _, td := range d.Tiers {
		fmt.Fprintf(&b, "%-14s %9d %12.4f %12.4f %12.4f",
			td.Tier, td.Requests, td.Mean(), td.MeanServed(), td.Wasted)
		for _, c := range order {
			fmt.Fprintf(&b, " %12.4f", td.Components[c])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
