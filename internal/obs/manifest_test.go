package obs

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestManifestRoundTrip checks that a manifest survives JSON encoding
// intact and validates on the way back in.
func TestManifestRoundTrip(t *testing.T) {
	reg := NewRegistry("round-trip")
	reg.Counter("sim.requests").Add(12345)
	reg.Gauge("core.sweep.worker_utilization").Set(0.87)
	reg.Timer("core.sweep.job").Observe(250 * time.Millisecond)

	m := NewManifest("webcachesim")
	m.SetConfig("fig", "2a")
	m.SetConfig("scale", 0.05)
	m.Trace = map[string]any{"requests": 12345.0, "fingerprint": "fnv1a:deadbeef"}
	m.SetNote("series", []string{"SC", "Hier-GD"})
	m.Finish(reg)

	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != ManifestSchema || got.Tool != "webcachesim" {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.Config["fig"] != "2a" || got.Config["scale"] != 0.05 {
		t.Fatalf("config echo lost: %v", got.Config)
	}
	if got.Metrics["sim.requests"] != 12345 {
		t.Fatalf("counter lost: %v", got.Metrics)
	}
	if got.Metrics["core.sweep.job.seconds"] != 0.25 || got.Metrics["core.sweep.job.count"] != 1 {
		t.Fatalf("timer flattening lost: %v", got.Metrics)
	}
	if got.Trace["fingerprint"] != "fnv1a:deadbeef" {
		t.Fatalf("trace fingerprint lost: %v", got.Trace)
	}
	if got.GoVersion == "" || got.NumCPU <= 0 {
		t.Fatalf("environment stamp missing: %+v", got)
	}
}

func TestManifestWriteFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	m := NewManifest("tracegen")
	m.Finish(nil)
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifestFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != "tracegen" {
		t.Fatalf("tool = %q", got.Tool)
	}
	if got.WallSeconds < 0 {
		t.Fatalf("wall = %g", got.WallSeconds)
	}
}

func TestManifestValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Manifest)
		want   string
	}{
		{"wrong schema", func(m *Manifest) { m.Schema = 99 }, "schema"},
		{"missing tool", func(m *Manifest) { m.Tool = "" }, "tool"},
		{"zero start", func(m *Manifest) { m.Start = time.Time{} }, "start"},
		{"negative wall", func(m *Manifest) { m.WallSeconds = -1 }, "negative"},
		{"nil metrics", func(m *Manifest) { m.Metrics = nil }, "metrics"},
	}
	for _, tc := range cases {
		m := NewManifest("t")
		m.Finish(nil)
		tc.mutate(m)
		err := m.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	var nilM *Manifest
	if nilM.Validate() == nil {
		t.Error("nil manifest must not validate")
	}
}
