package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrent hammers one counter from many goroutines;
// run under -race (see the Makefile's race target) to prove the
// instrumentation is race-clean.
func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry("test")
	c := reg.Counter("hits")
	const workers, perWorker = 16, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

// TestGaugeConcurrent exercises the CAS paths of Add and SetMax.
func TestGaugeConcurrent(t *testing.T) {
	reg := NewRegistry("test")
	sum := reg.Gauge("sum")
	max := reg.Gauge("max")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				sum.Add(1)
				max.SetMax(float64(w*1000 + i))
			}
		}()
	}
	wg.Wait()
	if got := sum.Value(); got != 8000 {
		t.Fatalf("gauge sum = %g, want 8000", got)
	}
	if got := max.Value(); got != 7999 {
		t.Fatalf("gauge max = %g, want 7999", got)
	}
}

// TestDisabledZeroAlloc asserts the acceptance criterion that the
// disabled path is free: metric lookup and every operation on the
// resulting nil handles allocate nothing.
func TestDisabledZeroAlloc(t *testing.T) {
	var reg *Registry // disabled
	c := reg.Counter("x")
	g := reg.Gauge("y")
	tm := reg.Timer("z")
	allocs := testing.AllocsPerRun(1000, func() {
		reg.Counter("sim.requests").Inc()
		c.Add(3)
		g.Set(1.5)
		g.Add(2)
		g.SetMax(9)
		tm.Observe(time.Second)
		tm.Start()()
	})
	if allocs != 0 {
		t.Fatalf("disabled instrumentation allocated %.1f bytes/op, want 0", allocs)
	}
	if c.Value() != 0 || g.Value() != 0 || tm.Count() != 0 {
		t.Fatal("nil handles must observe nothing")
	}
	if reg.Enabled() {
		t.Fatal("nil registry must report disabled")
	}
	if reg.Snapshot() != nil || reg.Values() != nil {
		t.Fatal("nil registry must snapshot to nil")
	}
}

func TestTimer(t *testing.T) {
	reg := NewRegistry("test")
	tm := reg.Timer("phase")
	tm.Observe(2 * time.Second)
	tm.Observe(4 * time.Second)
	if tm.Count() != 2 {
		t.Fatalf("count = %d, want 2", tm.Count())
	}
	if tm.Total() != 6*time.Second {
		t.Fatalf("total = %v, want 6s", tm.Total())
	}
	if tm.Mean() != 3*time.Second {
		t.Fatalf("mean = %v, want 3s", tm.Mean())
	}
	stop := tm.Start()
	stop()
	if tm.Count() != 3 {
		t.Fatalf("count after Start/stop = %d, want 3", tm.Count())
	}
}

// TestSnapshotAndValues checks the snapshot ordering and the timer
// flattening convention manifests rely on.
func TestSnapshotAndValues(t *testing.T) {
	reg := NewRegistry("test")
	reg.Counter("b.count").Add(7)
	reg.Gauge("a.value").Set(1.25)
	reg.Timer("c.time").Observe(1500 * time.Millisecond)

	snap := reg.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d metrics, want 3", len(snap))
	}
	for i, want := range []string{"a.value", "b.count", "c.time"} {
		if snap[i].Name != want {
			t.Fatalf("snapshot[%d] = %q, want %q (sorted)", i, snap[i].Name, want)
		}
	}

	vals := reg.Values()
	if vals["b.count"] != 7 || vals["a.value"] != 1.25 {
		t.Fatalf("values = %v", vals)
	}
	if vals["c.time.seconds"] != 1.5 || vals["c.time.count"] != 1 {
		t.Fatalf("timer flattening wrong: %v", vals)
	}

	if s := reg.String(); !strings.Contains(s, "b.count") {
		t.Fatalf("String() missing metrics: %q", s)
	}
}

func TestProgressETA(t *testing.T) {
	p := NewProgress(10)
	if _, ok := p.ETA(); ok {
		t.Fatal("ETA must be unavailable before any job completes")
	}
	p.start = time.Now().Add(-10 * time.Second) // 5 jobs in 10s -> 2s/job
	if got := p.Add(5); got != 5 {
		t.Fatalf("Add returned %d, want 5", got)
	}
	eta, ok := p.ETA()
	if !ok {
		t.Fatal("ETA must be available after progress")
	}
	// 5 remaining at ~2s/job ≈ 10s.
	if eta < 8*time.Second || eta > 12*time.Second {
		t.Fatalf("eta = %v, want ~10s", eta)
	}
	if s := p.String(); !strings.Contains(s, "5/10") {
		t.Fatalf("String() = %q", s)
	}
}

func TestProgressPrinter(t *testing.T) {
	var sb strings.Builder
	pp := NewProgressPrinter(&sb, "fig 2a", 4)
	for i := 0; i < 4; i++ {
		pp.Step(1)
	}
	pp.Finish()
	out := sb.String()
	if !strings.Contains(out, "fig 2a") || !strings.Contains(out, "4/4") {
		t.Fatalf("printer output %q missing label or completion", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatal("Finish must terminate the line")
	}
}
