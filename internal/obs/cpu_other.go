//go:build !unix

package obs

// processCPUSeconds is unavailable off Unix; manifests record 0.
func processCPUSeconds() float64 { return 0 }
