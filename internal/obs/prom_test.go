package obs

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func promRegistry() *Registry {
	reg := NewRegistry("prom")
	reg.Counter("sim.requests").Add(42)
	reg.Gauge("loadgen.achieved_rate").Set(123.5)
	reg.Timer("sim.run").Observe(1500 * time.Millisecond)
	h := reg.Histogram("loadgen.latency")
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	return reg
}

func TestWritePrometheusParses(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, promRegistry()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE webcache_sim_requests_total counter",
		"webcache_sim_requests_total 42",
		"# TYPE webcache_loadgen_achieved_rate gauge",
		"webcache_loadgen_achieved_rate 123.5",
		"# TYPE webcache_sim_run_seconds summary",
		"webcache_sim_run_seconds_sum 1.5",
		"webcache_sim_run_seconds_count 1",
		"# TYPE webcache_loadgen_latency_seconds summary",
		`webcache_loadgen_latency_seconds{quantile="0.5"}`,
		`webcache_loadgen_latency_seconds{quantile="0.999"}`,
		"webcache_loadgen_latency_seconds_count 100",
		"# TYPE webcache_loadgen_latency_seconds_hist histogram",
		`webcache_loadgen_latency_seconds_hist_bucket{le="+Inf"} 100`,
		"webcache_loadgen_latency_seconds_hist_count 100",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	n, err := ParsePrometheusText(strings.NewReader(out))
	if err != nil {
		t.Fatalf("our own exposition failed to parse: %v\n%s", err, out)
	}
	// counter + gauge + timer(sum,count) + histogram(4 quantiles + sum +
	// count) + the lossless bucket family (at least +Inf, sum, count,
	// min, max).
	if n < 15 {
		t.Fatalf("parsed %d samples, want >= 15:\n%s", n, out)
	}
}

func TestParsePrometheusSamplesValues(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, promRegistry()); err != nil {
		t.Fatal(err)
	}
	samples, types, err := ParsePrometheusSamples(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if types["webcache_sim_requests_total"] != "counter" ||
		types["webcache_loadgen_latency_seconds_hist"] != "histogram" {
		t.Fatalf("types = %v", types)
	}
	byName := map[string]Sample{}
	for _, s := range samples {
		if s.Labels == nil {
			byName[s.Name] = s
		}
	}
	if got := byName["webcache_sim_requests_total"].Value; got != 42 {
		t.Fatalf("counter value = %v", got)
	}
	if got := byName["webcache_loadgen_achieved_rate"].Value; got != 123.5 {
		t.Fatalf("gauge value = %v", got)
	}
	var infSeen bool
	for _, s := range samples {
		if s.Name == "webcache_loadgen_latency_seconds_hist_bucket" && s.Label("le") == "+Inf" {
			infSeen = true
			if s.Value != 100 {
				t.Fatalf("+Inf bucket = %v, want 100", s.Value)
			}
		}
	}
	if !infSeen {
		t.Fatal("no +Inf bucket sample parsed")
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, nil); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry: err=%v len=%d", err, buf.Len())
	}
}

func TestPrometheusHandler(t *testing.T) {
	rec := httptest.NewRecorder()
	PrometheusHandler(promRegistry()).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	if n, err := ParsePrometheusText(rec.Body); err != nil || n == 0 {
		t.Fatalf("scrape did not parse: n=%d err=%v", n, err)
	}
}

func TestParsePrometheusRejects(t *testing.T) {
	for _, bad := range []string{
		"webcache sim requests 1\n",
		"webcache_x 1 2 3\n",
		"# TYPE webcache_x bogus\n",
		"webcache_x{quantile=\"0.5\"} 1\n", // quantile without a summary TYPE
		"1metric 2\n",
	} {
		if _, err := ParsePrometheusText(strings.NewReader(bad)); err == nil {
			t.Fatalf("accepted malformed exposition %q", bad)
		}
	}
	if n, err := ParsePrometheusText(strings.NewReader("# HELP x y\n\n# random comment\nok_metric 1\n")); err != nil || n != 1 {
		t.Fatalf("comment handling: n=%d err=%v", n, err)
	}
}

func TestPromNameSanitizes(t *testing.T) {
	if got := promName("sim.serves.local_proxy"); got != "webcache_sim_serves_local_proxy" {
		t.Fatalf("promName = %q", got)
	}
	if got := promName("bench.Fig2a-16.ns/op"); got != "webcache_bench_Fig2a_16_ns_op" {
		t.Fatalf("promName = %q", got)
	}
}
