package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Structured state-transition event log.  Daemons emit one JSONL
// record per control-plane transition — member join/leave, breaker
// open/close, disk recovery start/done, SLO burn-rate threshold
// crossings, readiness flips — so an operator can reconstruct *why*
// the data-plane metrics moved without correlating log prose.  The
// log keeps a bounded in-memory tail for dashboards and tests, and
// optionally streams every record to a writer (a file, or stderr).
//
// Like every obs handle, a nil *EventLog ignores all operations, so
// call sites emit unconditionally.

// Event is one state-transition record.
type Event struct {
	Time time.Time `json:"ts"`
	// Source names the emitting process ("proxy-1", "cache-0-2", ...).
	Source string `json:"source,omitempty"`
	// Type is the transition kind, dotted lowercase: "fleet.join",
	// "breaker.open", "recovery.done", "slo.page", "ready.drain", ...
	Type string `json:"type"`
	// Fields carries the transition's context (peer address, class
	// name, burn rate, ...), all values pre-rendered as strings so the
	// JSONL schema stays flat and greppable.
	Fields map[string]string `json:"fields,omitempty"`
}

// eventTail is the bounded in-memory history an EventLog retains.
const eventTail = 256

// EventLog is a thread-safe JSONL event sink.
type EventLog struct {
	source string

	mu     sync.Mutex
	w      io.Writer
	recent []Event // ring buffer, eventTail capacity
	next   int
	total  int64
}

// NewEventLog creates an event log for one emitting process.  w
// receives one JSON line per event; nil keeps events in memory only.
func NewEventLog(source string, w io.Writer) *EventLog {
	return &EventLog{source: source, w: w}
}

// Emit records one event, stamping the wall clock and the log's
// source.  Marshal errors are impossible for the flat schema; write
// errors are swallowed (the event still lands in the tail) — the
// event log must never take a daemon down.
func (l *EventLog) Emit(typ string, fields map[string]string) {
	if l == nil {
		return
	}
	ev := Event{Time: time.Now(), Source: l.source, Type: typ, Fields: fields}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.recent) < eventTail {
		l.recent = append(l.recent, ev)
	} else {
		l.recent[l.next] = ev
		l.next = (l.next + 1) % eventTail
	}
	l.total++
	if l.w != nil {
		if b, err := json.Marshal(ev); err == nil {
			l.w.Write(append(b, '\n'))
		}
	}
}

// Recent returns up to n most-recent events, oldest first.
func (l *EventLog) Recent(n int) []Event {
	if l == nil || n <= 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	ordered := make([]Event, 0, len(l.recent))
	if len(l.recent) < eventTail {
		ordered = append(ordered, l.recent...)
	} else {
		ordered = append(ordered, l.recent[l.next:]...)
		ordered = append(ordered, l.recent[:l.next]...)
	}
	if len(ordered) > n {
		ordered = ordered[len(ordered)-n:]
	}
	return ordered
}

// Total returns the number of events emitted over the log's lifetime
// (including any that have rotated out of the tail).
func (l *EventLog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}
