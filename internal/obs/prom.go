package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4, the subset
// OpenMetrics scrapers accept).  WritePrometheus renders a registry;
// PrometheusHandler serves it as the daemons' /metrics endpoint;
// ParsePrometheusText is the validating reader the acceptance test
// scrapes with, and ParsePrometheusSamples the value-returning parser
// the cluster aggregator merges from.
//
// Name mapping: dots become underscores under a webcache_ prefix
// (sim.serves.p2p -> webcache_sim_serves_p2p), counters gain the
// conventional _total suffix, timers and histograms render as
// summaries in seconds (histograms with their quantile set).
//
// Histograms additionally export a lossless bucket family,
// <name>_seconds_hist, as a native Prometheus histogram: one
// cumulative _bucket sample per non-empty bucket (le = the bucket's
// upper bound in seconds at full float precision), the +Inf bucket,
// _sum/_count, and _min/_max sidecar samples.  Because the bucket
// layout is fixed (histogram.go), RestoreHistogram maps the le values
// exactly back onto bucket indices — a scrape round-trips bucket for
// bucket, which is what lets the cluster aggregator merge histograms
// across fleet members without quantile distortion.

// promName sanitizes a dotted metric name into a Prometheus metric
// name.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("webcache_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promValue renders a float the way Prometheus expects.
func promValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in Prometheus text exposition
// format.  A nil registry renders nothing (an empty, valid scrape).
func WritePrometheus(w io.Writer, r *Registry) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	snap := r.Snapshot()
	hists := r.histSnapshot()
	for _, m := range snap {
		name := promName(m.Name)
		switch m.Kind {
		case "counter":
			fmt.Fprintf(bw, "# TYPE %s_total counter\n", name)
			fmt.Fprintf(bw, "%s_total %s\n", name, promValue(m.Value))
		case "gauge":
			fmt.Fprintf(bw, "# TYPE %s gauge\n", name)
			fmt.Fprintf(bw, "%s %s\n", name, promValue(m.Value))
		case "timer":
			fmt.Fprintf(bw, "# TYPE %s_seconds summary\n", name)
			fmt.Fprintf(bw, "%s_seconds_sum %s\n", name, promValue(m.Value))
			fmt.Fprintf(bw, "%s_seconds_count %d\n", name, m.Count)
		case "histogram":
			h := hists[m.Name]
			fmt.Fprintf(bw, "# TYPE %s_seconds summary\n", name)
			for _, q := range histQuantiles {
				fmt.Fprintf(bw, "%s_seconds{quantile=%q} %s\n",
					name, strconv.FormatFloat(q.q, 'g', -1, 64), promValue(h.Quantile(q.q).Seconds()))
			}
			fmt.Fprintf(bw, "%s_seconds_sum %s\n", name, promValue(h.Sum().Seconds()))
			fmt.Fprintf(bw, "%s_seconds_count %d\n", name, h.Count())
			writeHistBuckets(bw, name, h)
		}
	}
	return bw.Flush()
}

// writeHistBuckets emits the lossless bucket family for one histogram.
// Bucket counts are snapshotted first so the cumulative series, the
// +Inf bucket, and _count agree with each other even while observers
// race the scrape.
func writeHistBuckets(w io.Writer, name string, h *Histogram) {
	var counts [histBuckets]int64
	var total int64
	for i := range counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	fmt.Fprintf(w, "# TYPE %s_seconds_hist histogram\n", name)
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		cum += c
		_, hi := bucketBounds(i)
		fmt.Fprintf(w, "%s_seconds_hist_bucket{le=%q} %d\n", name, promValue(hi/1e9), cum)
	}
	fmt.Fprintf(w, "%s_seconds_hist_bucket{le=\"+Inf\"} %d\n", name, total)
	fmt.Fprintf(w, "%s_seconds_hist_sum %s\n", name, promValue(h.Sum().Seconds()))
	fmt.Fprintf(w, "%s_seconds_hist_count %d\n", name, total)
	fmt.Fprintf(w, "%s_seconds_hist_min %s\n", name, promValue(h.Min().Seconds()))
	fmt.Fprintf(w, "%s_seconds_hist_max %s\n", name, promValue(h.Max().Seconds()))
}

// PrometheusHandler serves the registry as a /metrics endpoint.
func PrometheusHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, r)
	})
}

var (
	promTypeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|summary|histogram|untyped)$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (NaN|[+-]?Inf|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)( [0-9]+)?$`)
	promLabelRe  = regexp.MustCompile(`([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"`)
)

// Sample is one parsed exposition sample: a metric name, its label set
// (nil when unlabeled), and the value.
type Sample struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// Label returns the named label's value ("" when absent).
func (s Sample) Label(key string) string { return s.Labels[key] }

// ParsePrometheusText validates a text-format exposition and returns
// the number of samples it carries.  It accepts the 0.0.4 grammar this
// package emits: optional # HELP / # TYPE comments and
// name{labels} value [timestamp] samples.
func ParsePrometheusText(r io.Reader) (samples int, err error) {
	ss, _, err := ParsePrometheusSamples(r)
	return len(ss), err
}

// ParsePrometheusSamples parses a text-format exposition into its
// samples plus the # TYPE declarations (family name -> type).  Same
// grammar as ParsePrometheusText (which wraps it); this is the reader
// the cluster aggregator scrapes fleet members with.
func ParsePrometheusSamples(r io.Reader) (samples []Sample, types map[string]string, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	types = map[string]string{}
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if strings.HasPrefix(text, "# HELP ") {
				continue
			}
			if m := promTypeRe.FindStringSubmatch(text); m != nil {
				types[m[1]] = m[2]
				continue
			}
			if strings.HasPrefix(text, "# TYPE") {
				return samples, types, fmt.Errorf("line %d: malformed TYPE comment: %q", line, text)
			}
			continue // other comments are legal
		}
		m := promSampleRe.FindStringSubmatch(text)
		if m == nil {
			return samples, types, fmt.Errorf("line %d: malformed sample: %q", line, text)
		}
		// Quantile labels may only appear on summary/histogram
		// families; catch a mislabeled scalar early.
		if strings.Contains(m[2], "quantile=") {
			base := m[1]
			if types[base] != "summary" && types[base] != "histogram" {
				return samples, types, fmt.Errorf("line %d: quantile label on non-summary %q", line, base)
			}
		}
		s := Sample{Name: m[1]}
		if m[2] != "" {
			for _, lm := range promLabelRe.FindAllStringSubmatch(m[2], -1) {
				if s.Labels == nil {
					s.Labels = map[string]string{}
				}
				s.Labels[lm[1]] = lm[2]
			}
		}
		s.Value, err = strconv.ParseFloat(m[3], 64)
		if err != nil {
			return samples, types, fmt.Errorf("line %d: bad value %q: %v", line, m[3], err)
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return samples, types, err
	}
	return samples, types, nil
}

// bucketForUpper maps a _hist bucket's le value (seconds) back onto
// its fixed-layout bucket index — the inverse of the hi bound
// writeHistBuckets emitted.  Rounding absorbs the float formatting
// round trip.
func bucketForUpper(leSeconds float64) int {
	hi := leSeconds * 1e9
	if hi <= 0 {
		return 0
	}
	i := int(math.Round(math.Log(hi/float64(histMin))/math.Log(histGrowth))) - 1
	if i < 0 {
		i = 0
	}
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// RestoreHistogram rebuilds a Histogram from one scraped
// <name>_seconds_hist family: the cumulative bucket counts keyed by
// their le upper bound in seconds (+Inf included), plus the family's
// sum/min/max samples in seconds.  Because the bucket layout is fixed,
// the reconstruction is exact per bucket; the result merges losslessly
// into other restored or live histograms via Merge.
func RestoreHistogram(cumulative map[float64]int64, sumSeconds, minSeconds, maxSeconds float64) *Histogram {
	h := &Histogram{}
	les := make([]float64, 0, len(cumulative))
	for le := range cumulative {
		if !math.IsInf(le, 1) {
			les = append(les, le)
		}
	}
	sort.Float64s(les)
	var prev, total int64
	for _, le := range les {
		c := cumulative[le]
		if d := c - prev; d > 0 {
			h.counts[bucketForUpper(le)].Add(d)
			total += d
		}
		prev = c
	}
	// Any +Inf remainder past the last finite bound belongs to the
	// final catch-all bucket.
	if inf, ok := cumulative[math.Inf(1)]; ok && inf > prev {
		h.counts[histBuckets-1].Add(inf - prev)
		total += inf - prev
	}
	h.count.Store(total)
	h.sum.Store(int64(math.Round(sumSeconds * 1e9)))
	if minSeconds > 0 {
		h.min.Store(int64(math.Round(minSeconds * 1e9)))
	}
	if maxSeconds > 0 {
		h.max.Store(int64(math.Round(maxSeconds * 1e9)))
	}
	return h
}

// sortedNames is a tiny helper for deterministic iteration in tests.
func sortedNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
