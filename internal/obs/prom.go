package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4, the subset
// OpenMetrics scrapers accept).  WritePrometheus renders a registry;
// PrometheusHandler serves it as the daemons' /metrics endpoint;
// ParsePrometheusText is the validating reader the acceptance test
// scrapes with.
//
// Name mapping: dots become underscores under a webcache_ prefix
// (sim.serves.p2p -> webcache_sim_serves_p2p), counters gain the
// conventional _total suffix, timers and histograms render as
// summaries in seconds (histograms with their quantile set).

// promName sanitizes a dotted metric name into a Prometheus metric
// name.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("webcache_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promValue renders a float the way Prometheus expects.
func promValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in Prometheus text exposition
// format.  A nil registry renders nothing (an empty, valid scrape).
func WritePrometheus(w io.Writer, r *Registry) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	snap := r.Snapshot()
	hists := r.histSnapshot()
	for _, m := range snap {
		name := promName(m.Name)
		switch m.Kind {
		case "counter":
			fmt.Fprintf(bw, "# TYPE %s_total counter\n", name)
			fmt.Fprintf(bw, "%s_total %s\n", name, promValue(m.Value))
		case "gauge":
			fmt.Fprintf(bw, "# TYPE %s gauge\n", name)
			fmt.Fprintf(bw, "%s %s\n", name, promValue(m.Value))
		case "timer":
			fmt.Fprintf(bw, "# TYPE %s_seconds summary\n", name)
			fmt.Fprintf(bw, "%s_seconds_sum %s\n", name, promValue(m.Value))
			fmt.Fprintf(bw, "%s_seconds_count %d\n", name, m.Count)
		case "histogram":
			h := hists[m.Name]
			fmt.Fprintf(bw, "# TYPE %s_seconds summary\n", name)
			for _, q := range histQuantiles {
				fmt.Fprintf(bw, "%s_seconds{quantile=%q} %s\n",
					name, strconv.FormatFloat(q.q, 'g', -1, 64), promValue(h.Quantile(q.q).Seconds()))
			}
			fmt.Fprintf(bw, "%s_seconds_sum %s\n", name, promValue(h.Sum().Seconds()))
			fmt.Fprintf(bw, "%s_seconds_count %d\n", name, h.Count())
		}
	}
	return bw.Flush()
}

// PrometheusHandler serves the registry as a /metrics endpoint.
func PrometheusHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, r)
	})
}

var (
	promTypeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|summary|histogram|untyped)$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (NaN|[+-]?Inf|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)( [0-9]+)?$`)
)

// ParsePrometheusText validates a text-format exposition and returns
// the number of samples it carries.  It accepts the 0.0.4 grammar this
// package emits: optional # HELP / # TYPE comments and
// name{labels} value [timestamp] samples.
func ParsePrometheusText(r io.Reader) (samples int, err error) {
	sc := bufio.NewScanner(r)
	typed := map[string]string{}
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if strings.HasPrefix(text, "# HELP ") {
				continue
			}
			if m := promTypeRe.FindStringSubmatch(text); m != nil {
				typed[m[1]] = m[2]
				continue
			}
			if strings.HasPrefix(text, "# TYPE") {
				return samples, fmt.Errorf("line %d: malformed TYPE comment: %q", line, text)
			}
			continue // other comments are legal
		}
		m := promSampleRe.FindStringSubmatch(text)
		if m == nil {
			return samples, fmt.Errorf("line %d: malformed sample: %q", line, text)
		}
		// Quantile labels may only appear on summary/histogram
		// families; catch a mislabeled scalar early.
		if strings.Contains(m[2], "quantile=") {
			base := m[1]
			if typed[base] != "summary" && typed[base] != "histogram" {
				return samples, fmt.Errorf("line %d: quantile label on non-summary %q", line, base)
			}
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return samples, err
	}
	return samples, nil
}

// sortedNames is a tiny helper for deterministic iteration in tests.
func sortedNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
