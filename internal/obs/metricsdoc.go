package obs

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// Structural doc-drift checking for METRICS.md: extract every metric
// name the glossary documents (including families written with brace
// alternation like `sim.serves.{local_proxy,p2p}` or placeholder
// segments like `check.violations.<layer>`) and compare them, both
// directions, against the names a smoke run actually registered.
// Each tool's test owns a namespace subset, so a new metric that is
// not documented — or a documented metric no code registers — fails a
// test instead of rotting quietly.

// DocPattern is one documented metric name; placeholder segments make
// it a family matching any value in that position.
type DocPattern struct {
	Raw string // as written in the doc, braces expanded
	re  *regexp.Regexp
}

// Matches reports whether a registered metric name falls under the
// pattern.
func (p DocPattern) Matches(name string) bool { return p.re.MatchString(name) }

// Wildcard reports whether the pattern is a family (has placeholder
// segments).
func (p DocPattern) Wildcard() bool { return strings.Contains(p.Raw, "<") }

var (
	inlineCodeRe = regexp.MustCompile("`([^`\n]+)`")
	plainSegRe   = regexp.MustCompile(`^[a-z0-9_]+$`)
	nsHeadingRe  = regexp.MustCompile("(?m)^#{2,4} `([a-z0-9_.]+)\\.\\*`")
)

// stripFences removes fenced code blocks, so example JSON documents
// and shell transcripts don't contribute phantom metric names.
func stripFences(md string) string {
	var out []string
	fence := false
	for _, ln := range strings.Split(md, "\n") {
		if strings.HasPrefix(strings.TrimSpace(ln), "```") {
			fence = !fence
			continue
		}
		if !fence {
			out = append(out, ln)
		}
	}
	return strings.Join(out, "\n")
}

// expandBraces expands one level of {a,b,c} alternation (recursively,
// so multiple groups multiply out).  A malformed group yields nothing.
func expandBraces(tok string) []string {
	i := strings.IndexByte(tok, '{')
	if i < 0 {
		return []string{tok}
	}
	j := strings.IndexByte(tok[i:], '}')
	if j < 0 {
		return nil
	}
	j += i
	var out []string
	for _, alt := range strings.Split(tok[i+1:j], ",") {
		out = append(out, expandBraces(tok[:i]+alt+tok[j+1:])...)
	}
	return out
}

// patternFor compiles one expanded token into a pattern, or reports
// that the token is not a metric name (Go identifiers, file names, and
// prose fragments all fall out here).
func patternFor(tok string) (DocPattern, bool) {
	if !strings.Contains(tok, ".") || strings.ContainsAny(tok, " */()=:") {
		return DocPattern{}, false
	}
	var reb strings.Builder
	reb.WriteString("^")
	for k, seg := range strings.Split(tok, ".") {
		if k > 0 {
			reb.WriteString(`\.`)
		}
		if strings.HasPrefix(seg, "<") && strings.HasSuffix(seg, ">") && len(seg) > 2 {
			if k == 0 {
				// A leading placeholder (`<name>.seconds` in the
				// conventions prose) has no namespace anchor and is
				// not a metric family.
				return DocPattern{}, false
			}
			reb.WriteString(`[^.]+`)
			continue
		}
		if !plainSegRe.MatchString(seg) {
			return DocPattern{}, false
		}
		reb.WriteString(regexp.QuoteMeta(seg))
	}
	reb.WriteString("$")
	return DocPattern{Raw: tok, re: regexp.MustCompile(reb.String())}, true
}

// DocumentedMetrics extracts every metric-name pattern from a METRICS.md
// document: inline-code tokens outside fenced blocks that parse as
// dotted lowercase names, with brace alternation expanded and
// <placeholder> segments compiled to wildcards.
func DocumentedMetrics(md []byte) []DocPattern {
	var out []DocPattern
	seen := map[string]bool{}
	for _, m := range inlineCodeRe.FindAllStringSubmatch(stripFences(string(md)), -1) {
		for _, tok := range expandBraces(m[1]) {
			p, ok := patternFor(tok)
			if ok && !seen[p.Raw] {
				seen[p.Raw] = true
				out = append(out, p)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Raw < out[j].Raw })
	return out
}

// MetricNamespaces lists the `ns.*` namespace headings the document
// declares, sorted.
func MetricNamespaces(md []byte) []string {
	var out []string
	for _, m := range nsHeadingRe.FindAllStringSubmatch(string(md), -1) {
		out = append(out, m[1])
	}
	sort.Strings(out)
	return out
}

// inNamespaces reports whether name falls under one of the given
// dotted prefixes.  A "-"-prefixed namespace excludes its subtree
// even when a broader prefix includes it, so a parent namespace and a
// nested one can be owned by different tests ("store" vs
// "-store.disk").
func inNamespaces(name string, namespaces []string) bool {
	for _, ns := range namespaces {
		if strings.HasPrefix(ns, "-") && strings.HasPrefix(name, ns[1:]+".") {
			return false
		}
	}
	for _, ns := range namespaces {
		if !strings.HasPrefix(ns, "-") && strings.HasPrefix(name, ns+".") {
			return true
		}
	}
	return false
}

// CheckMetricsDoc cross-checks the registered metric names of a smoke
// run against the documented patterns, restricted to the given
// namespaces (each tool's test owns its own; a "-"-prefixed namespace
// carves its subtree out of a broader one).  It fails in both
// directions: a registered name no pattern documents, or a documented
// pattern no registration exercises.
func CheckMetricsDoc(md []byte, registered []string, namespaces ...string) error {
	pats := []DocPattern{}
	for _, p := range DocumentedMetrics(md) {
		if inNamespaces(p.Raw, namespaces) {
			pats = append(pats, p)
		}
	}
	var problems []string
	matched := make([]bool, len(pats))
	for _, name := range registered {
		if !inNamespaces(name, namespaces) {
			continue
		}
		ok := false
		for i, p := range pats {
			if p.Matches(name) {
				matched[i] = true
				ok = true
			}
		}
		if !ok {
			problems = append(problems, fmt.Sprintf("registered metric %q is not documented in METRICS.md", name))
		}
	}
	for i, p := range pats {
		if !matched[i] {
			problems = append(problems, fmt.Sprintf("documented metric %q was not registered by the smoke run", p.Raw))
		}
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		return fmt.Errorf("metrics doc drift (%d problems):\n  %s", len(problems), strings.Join(problems, "\n  "))
	}
	return nil
}
