package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// The disabled tracer must cost nothing: no allocation and no clock
// read anywhere on the hot path.  This is the same contract the
// registry pins in TestDisabledZeroAlloc.
func TestTracerDisabledZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		st := tr.StartTrace("request", 1)
		st.Span("proxy.cache", "Tl", 1)
		st.WastedSpan("probe", "Tc", 0.1)
		h := st.StartSpan("peer", "Tc")
		h.End()
		h.EndWasted()
		_ = st.TraceID()
		st.Finish("server", 2)
		st.FinishWall("proxy")
		st2 := tr.StartTraceID("x-1", "hop")
		st2.Span("s", "", 1)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocated %v times per op", allocs)
	}
}

// BenchmarkDisabledTracer is the CI zero-alloc guard for the disabled
// hot path (run with -benchmem; allocs/op must report 0).
func BenchmarkDisabledTracer(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st := tr.StartTrace("request", float64(i))
		st.Span("proxy.cache", "Tl", 1)
		st.Finish("server", 2)
	}
}

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(TracerOptions{Origin: "sim", SampleEvery: 3})
	kept := 0
	for i := 0; i < 9; i++ {
		if st := tr.StartTrace("request", float64(i)); st != nil {
			kept++
			st.Finish("server", 1)
		}
	}
	if kept != 3 || tr.Len() != 3 {
		t.Fatalf("SampleEvery=3 over 9 requests kept %d (Len %d), want 3", kept, tr.Len())
	}
	// Propagated joins are not re-sampled.
	if st := tr.StartTraceID("up-1", "hop"); st == nil {
		t.Fatal("StartTraceID was sampled away")
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d after join, want 4", tr.Len())
	}
}

func TestTracerLimit(t *testing.T) {
	tr := NewTracer(TracerOptions{Limit: 2})
	for i := 0; i < 5; i++ {
		tr.StartTrace("request", float64(i))
	}
	if tr.Len() != 2 || tr.Dropped() != 3 {
		t.Fatalf("Len=%d Dropped=%d, want 2/3", tr.Len(), tr.Dropped())
	}
	reg := NewRegistry("t")
	tr.PublishMetrics(reg)
	if got := reg.Counter("trace.dropped").Value(); got != 3 {
		t.Fatalf("trace.dropped = %d, want 3", got)
	}
}

func TestVirtualSpansLayOut(t *testing.T) {
	tr := NewTracer(TracerOptions{Origin: "sim"})
	st := tr.StartTrace("request", 10)
	st.Span("proxy.cache", "Tl", 1)
	st.WastedSpan("peer.probe.stale", "Tc", 2)
	st.Span("origin.fetch", "Ts", 20)
	st.Finish("server", 23)

	if st.Spans[0].Start != 10 || st.Spans[1].Start != 11 || st.Spans[2].Start != 13 {
		t.Fatalf("span starts %v %v %v, want 10 11 13",
			st.Spans[0].Start, st.Spans[1].Start, st.Spans[2].Start)
	}
	d := tr.Decompose()
	row := d.Tier("server")
	if row == nil || row.Requests != 1 {
		t.Fatalf("decomposition missing server row: %+v", d)
	}
	if row.Total != 23 || row.Wasted != 2 || row.SpanTotal != 23 {
		t.Fatalf("row total/wasted/spantotal = %v/%v/%v, want 23/2/23", row.Total, row.Wasted, row.SpanTotal)
	}
	if got := row.MeanServed(); got != 21 {
		t.Fatalf("MeanServed = %v, want 21", got)
	}
	if row.Components["Ts"] != 20 || row.Components["Tl"] != 1 || row.Components["Tc"] != 2 {
		t.Fatalf("components = %v", row.Components)
	}
	if d.Table() == "" || !strings.Contains(d.Table(), "server") {
		t.Fatalf("Table() = %q", d.Table())
	}
}

func TestWallSpans(t *testing.T) {
	tr := NewTracer(TracerOptions{Origin: "proxy", Clock: ClockWall})
	st := tr.StartTrace("GET", 0)
	h := st.StartSpan("lan.fetch", "Tc")
	time.Sleep(time.Millisecond)
	h.End()
	st.FinishWall("peer-proxy")

	snap := st.snapshot()
	if len(snap.Spans) != 1 || snap.Spans[0].Dur <= 0 {
		t.Fatalf("wall span not recorded: %+v", snap.Spans)
	}
	if snap.Dur < snap.Spans[0].Dur {
		t.Fatalf("trace dur %v < span dur %v", snap.Dur, snap.Spans[0].Dur)
	}
	if snap.Tier != "peer-proxy" || !snap.Finished {
		t.Fatalf("FinishWall did not close the trace: %+v", snap)
	}
}

// Concurrent span recording into a shared trace and concurrent trace
// starts must be race-free (this test is part of the race-enabled
// `make check` gate).
func TestConcurrentSpanRecording(t *testing.T) {
	tr := NewTracer(TracerOptions{Origin: "race", Clock: ClockWall, Limit: 100000})
	shared := tr.StartTrace("request", 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				shared.Span("hop", "Tc", 0.001)
				h := shared.StartSpan("wall", "Tp2p")
				h.End()
				st := tr.StartTrace("request", float64(i))
				st.Span("proxy.cache", "Tl", 1)
				st.Finish("proxy", 1)
				if j := tr.StartTraceID("peer-1", "hop"); j != nil {
					j.Span("peer.cache", "Tc", 1)
					j.FinishWall("peer-proxy")
				}
			}
		}(g)
	}
	// Exports may run while recording continues.
	var buf bytes.Buffer
	_ = tr.WriteChrome(&buf)
	_ = tr.WriteJSONL(&buf)
	_ = tr.Decompose()
	wg.Wait()
	shared.Finish("proxy", 1)
	if tr.Len() == 0 {
		t.Fatal("no traces recorded")
	}
}

func TestWriteChromeValidates(t *testing.T) {
	tr := NewTracer(TracerOptions{Origin: "sim"})
	st := tr.StartTrace("request", 0)
	st.Span("proxy.cache", "Tl", 1)
	st.Span("origin.fetch", "Ts", 20)
	st.Finish("server", 21)
	st2 := tr.StartTraceID("peer-7", "hop")
	st2.Span("peer.cache", "Tc", 10)
	st2.Finish("peer-proxy", 10)

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("our own export failed validation: %v", err)
	}
	// The events carry the component tag and scale to microseconds.
	if !strings.Contains(buf.String(), `"cat":"Ts"`) {
		t.Fatalf("missing component category: %s", buf.String())
	}
	var doc struct {
		TraceEvents []struct {
			Ts  float64 `json:"ts"`
			Dur float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("got %d events, want 5 (2 requests + 3 spans)", len(doc.TraceEvents))
	}

	for _, bad := range []string{
		`{}`,
		`{"traceEvents":[{"ph":"X","ts":0,"dur":1,"pid":1,"tid":1}]}`,
		`{"traceEvents":[{"name":"a","ph":"B","ts":0,"dur":1,"pid":1,"tid":1}]}`,
		`{"traceEvents":[{"name":"a","ph":"X","ts":0,"dur":-1,"pid":1,"tid":1}]}`,
		`{"traceEvents":[{"name":"a","ph":"X","ts":0,"dur":1}]}`,
	} {
		if ValidateChromeTrace([]byte(bad)) == nil {
			t.Fatalf("ValidateChromeTrace accepted %s", bad)
		}
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := NewTracer(TracerOptions{Origin: "sim"})
	for i := 0; i < 3; i++ {
		st := tr.StartTrace("request", float64(i))
		st.Span("proxy.cache", "Tl", 1)
		st.Finish("proxy", 1)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var st SpanTrace
		if err := json.Unmarshal(sc.Bytes(), &st); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		if st.ID == "" || st.Tier != "proxy" || len(st.Spans) != 1 {
			t.Fatalf("line %d: %+v", lines, st)
		}
		lines++
	}
	if lines != 3 {
		t.Fatalf("got %d JSONL lines, want 3", lines)
	}
}

func TestPublishMetrics(t *testing.T) {
	tr := NewTracer(TracerOptions{Origin: "sim"})
	st := tr.StartTrace("request", 0)
	st.Span("a", "Tl", 1)
	st.Span("b", "Ts", 1)
	st.Finish("server", 2)
	tr.StartTraceID("up-3", "hop").Span("c", "Tc", 1)

	reg := NewRegistry("t")
	tr.PublishMetrics(reg)
	vals := reg.Values()
	for name, want := range map[string]float64{
		"trace.sampled": 1,
		"trace.joined":  1,
		"trace.spans":   3,
		"trace.dropped": 0,
	} {
		if vals[name] != want {
			t.Fatalf("%s = %v, want %v (all: %v)", name, vals[name], want, vals)
		}
	}
}

func TestDecomposeSkipsUnfinishedAndJoined(t *testing.T) {
	tr := NewTracer(TracerOptions{Origin: "sim"})
	open := tr.StartTrace("request", 0)
	open.Span("a", "Tl", 1) // never finished
	join := tr.StartTraceID("up-9", "hop")
	join.Span("b", "Tc", 1)
	join.Finish("peer-proxy", 1) // finished but not a root
	done := tr.StartTrace("request", 1)
	done.Span("c", "Tl", 1)
	done.Finish("proxy", 1)

	d := tr.Decompose()
	if len(d.Tiers) != 1 || d.Tiers[0].Tier != "proxy" {
		t.Fatalf("decomposition rows = %+v, want just proxy", d.Tiers)
	}
	if math.Abs(d.Tiers[0].Mean()-1) > 1e-12 {
		t.Fatalf("mean = %v", d.Tiers[0].Mean())
	}
}
