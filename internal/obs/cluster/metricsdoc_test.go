package cluster

import (
	"context"
	"os"
	"testing"
	"time"

	"webcache/internal/obs"
)

// TestMetricsDocCluster holds the cluster.* namespace in METRICS.md
// against the names one aggregator scrape registers in its merged
// registry, in both directions.
func TestMetricsDocCluster(t *testing.T) {
	md, err := os.ReadFile("../../../METRICS.md")
	if err != nil {
		t.Fatal(err)
	}
	reg := memberRegistry("a", 100, 20, 0, []time.Duration{time.Millisecond})
	srv := fakeMember(t, reg, &Heartbeat{Self: "a", Load: 1, Objects: 5, Members: 1})
	agg := New([]Member{{Name: "a", URL: srv.URL}}, Options{})
	snap := agg.ScrapeOnce(context.Background())

	var names []string
	for _, m := range snap.Registry().Snapshot() {
		names = append(names, m.Name)
	}
	if err := obs.CheckMetricsDoc(md, names, "cluster"); err != nil {
		t.Fatal(err)
	}
}
