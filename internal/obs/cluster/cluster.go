// Package cluster is the fleet-wide metrics aggregation plane: a
// scraper that polls every fleet member's /metrics exposition (plus
// its /fleet/heartbeat metadata) and merges the per-process registries
// into one coherent cluster.* view.
//
// Merge semantics, per exposition family:
//
//   - counters and plain gauges are summed across members (they are
//     per-process totals, so the sum is the cluster total);
//   - histogram bucket families (<name>_seconds_hist) are merged
//     bucket-for-bucket via obs.RestoreHistogram — lossless, so the
//     cluster quantiles are computed from the union of samples rather
//     than averaging per-member quantiles;
//   - ratio-shaped gauges (burn rates, paging flags, budget remaining)
//     are NOT additive: burn rates and paging take the worst member
//     (max), budget remaining the most-spent member (min);
//   - summary families (timer/histogram quantile views) are skipped —
//     the cluster view recomputes quantiles from merged buckets.
//
// Staleness: a member whose scrape fails keeps contributing its
// last-good sample set, flagged stale with its age, so one crashed
// daemon degrades the view instead of zeroing its share of the
// cluster totals.  Member up/down transitions are emitted to the
// event log.
//
// The merged view lands in a fresh obs.Registry per scrape under
// metric names "cluster.<family>" (the exposition family name with
// the webcache_ prefix stripped, underscores kept), exposed by
// Handler as /cluster/metrics (Prometheus text) and /cluster/snapshot
// (JSON).  hiergdd top renders the same snapshots as a live
// dashboard.
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"webcache/internal/obs"
)

// Member is one scrape target.
type Member struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// ParseMembers parses the flag syntax "name=url,name=url" (bare URLs
// get member-<i> names).
func ParseMembers(spec string) ([]Member, error) {
	var out []Member
	for i, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		m := Member{Name: fmt.Sprintf("member-%d", i)}
		if eq := strings.IndexByte(part, '='); eq > 0 && !strings.Contains(part[:eq], "/") {
			m.Name, part = part[:eq], part[eq+1:]
		}
		if !strings.Contains(part, "://") {
			part = "http://" + part
		}
		m.URL = strings.TrimRight(part, "/")
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: no members in %q", spec)
	}
	return out, nil
}

// Options tunes the aggregator.
type Options struct {
	// Client performs the scrapes (default: 2s-timeout client).
	Client *http.Client
	// StaleAfter caps how long a failed member's last-good samples
	// keep contributing before they are dropped from the merged view
	// entirely (default 30s; the member is flagged stale as soon as a
	// scrape fails).
	StaleAfter time.Duration
	// Events receives member.up / member.down transitions.
	Events *obs.EventLog
	// Now injects a clock (tests).
	Now func() time.Time
}

// Heartbeat mirrors the fleet's GET /fleet/heartbeat payload.
type Heartbeat struct {
	Self    string `json:"self"`
	Load    uint64 `json:"load"`
	Objects int    `json:"objects"`
	Members int    `json:"members"`
}

// memberData is one member's decoded exposition.
type memberData struct {
	counters map[string]float64
	gauges   map[string]float64
	hists    map[string]*obs.Histogram
}

// memberState is the aggregator's rolling view of one member.
type memberState struct {
	member    Member
	data      *memberData
	heartbeat *Heartbeat
	scrapedAt time.Time // last successful scrape
	up        bool
	err       string
}

// Aggregator scrapes a fixed member set and merges the results.
type Aggregator struct {
	members []Member
	opts    Options

	mu    sync.Mutex
	state map[string]*memberState
	snap  *Snapshot
}

// New builds an aggregator over the member set.
func New(members []Member, opts Options) *Aggregator {
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 2 * time.Second}
	}
	if opts.StaleAfter <= 0 {
		opts.StaleAfter = 30 * time.Second
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	a := &Aggregator{members: members, opts: opts, state: map[string]*memberState{}}
	for _, m := range members {
		a.state[m.Name] = &memberState{member: m}
	}
	return a
}

// MemberView is one member's slice of a snapshot.
type MemberView struct {
	Member
	Up    bool   `json:"up"`
	Stale bool   `json:"stale"`
	Err   string `json:"err,omitempty"`
	// AgeSeconds is the age of the data contributing to the merged
	// view (0 for a member scraped this round, -1 never scraped).
	AgeSeconds float64 `json:"age_seconds"`
	Requests   float64 `json:"requests"`
	HitRatio   float64 `json:"hit_ratio"`
	// Load and Objects come from the fleet heartbeat (0 when the
	// member runs fleet-disabled).
	Load         float64    `json:"load"`
	Objects      float64    `json:"objects"`
	BreakerOpens float64    `json:"breaker_opens"`
	Heartbeat    *Heartbeat `json:"heartbeat,omitempty"`
}

// ClassRollup is the cluster view of one SLO class: additive ledger
// totals plus worst-member burn rates.
type ClassRollup struct {
	Name     string  `json:"name"`
	Good     float64 `json:"good"`
	Bad      float64 `json:"bad"`
	FastBurn float64 `json:"fast_burn"` // max across members
	SlowBurn float64 `json:"slow_burn"` // max across members
	Paging   bool    `json:"paging"`    // any member paging
}

// Snapshot is one aggregation round: the merged cluster.* values, the
// per-member breakdown, and the derived cluster stats.
type Snapshot struct {
	At      time.Time    `json:"at"`
	Members []MemberView `json:"members"`
	// Requests/OriginFetches/HitRatio are the deduplicated cluster
	// serving stats: fleet-hop serves are subtracted from the request
	// sum so a request forwarded between members counts once.
	Requests      float64 `json:"requests"`
	OriginFetches float64 `json:"origin_fetches"`
	HitRatio      float64 `json:"hit_ratio"`
	// SLO is the per-class rollup, present when any member publishes
	// slo.* metrics.
	SLO []ClassRollup `json:"slo,omitempty"`
	// Values is the merged registry flattened (histograms contribute
	// their quantile summaries), every name under cluster.*.
	Values map[string]float64 `json:"values"`

	merged *obs.Registry
}

// Registry returns the merged cluster.* registry behind the snapshot.
func (s *Snapshot) Registry() *obs.Registry { return s.merged }

// scrapeMember fetches and decodes one member's exposition and
// heartbeat.  The heartbeat is optional (fleet-disabled daemons answer
// 503 / 404); only a /metrics failure fails the scrape.
func (a *Aggregator) scrapeMember(ctx context.Context, m Member) (*memberData, *Heartbeat, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", m.URL+"/metrics", nil)
	if err != nil {
		return nil, nil, err
	}
	resp, err := a.opts.Client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	samples, types, err := obs.ParsePrometheusSamples(resp.Body)
	if err != nil {
		return nil, nil, fmt.Errorf("parse /metrics: %v", err)
	}
	data := decodeSamples(samples, types)

	var hb *Heartbeat
	if req, err := http.NewRequestWithContext(ctx, "GET", m.URL+"/fleet/heartbeat", nil); err == nil {
		if resp, err := a.opts.Client.Do(req); err == nil {
			if resp.StatusCode == http.StatusOK {
				var h Heartbeat
				if json.NewDecoder(resp.Body).Decode(&h) == nil {
					hb = &h
				}
			}
			resp.Body.Close()
		}
	}
	return data, hb, nil
}

// histAcc accumulates one _seconds_hist family during decoding.
type histAcc struct {
	buckets       map[float64]int64
	sum, min, max float64
}

// decodeSamples folds parsed exposition samples into per-family
// counters, gauges, and reconstructed histograms.  Family names are
// the exposition names with the webcache_ prefix and kind suffixes
// stripped.
func decodeSamples(samples []obs.Sample, types map[string]string) *memberData {
	md := &memberData{
		counters: map[string]float64{},
		gauges:   map[string]float64{},
		hists:    map[string]*obs.Histogram{},
	}
	accs := map[string]*histAcc{}
	acc := func(base string) *histAcc {
		h, ok := accs[base]
		if !ok {
			h = &histAcc{buckets: map[float64]int64{}}
			accs[base] = h
		}
		return h
	}
	family := func(name string) string { return strings.TrimPrefix(name, "webcache_") }
	for _, s := range samples {
		name := s.Name
		switch {
		case strings.HasSuffix(name, "_seconds_hist_bucket"):
			base := strings.TrimSuffix(name, "_bucket")
			le := math.Inf(1)
			if v := s.Label("le"); v != "+Inf" {
				f, err := strconv.ParseFloat(v, 64)
				if err != nil {
					continue
				}
				le = f
			}
			acc(base).buckets[le] = int64(s.Value)
		case strings.HasSuffix(name, "_seconds_hist_sum"):
			acc(strings.TrimSuffix(name, "_sum")).sum = s.Value
		case strings.HasSuffix(name, "_seconds_hist_count"):
			// total derives from the +Inf bucket
		case strings.HasSuffix(name, "_seconds_hist_min"):
			acc(strings.TrimSuffix(name, "_min")).min = s.Value
		case strings.HasSuffix(name, "_seconds_hist_max"):
			acc(strings.TrimSuffix(name, "_max")).max = s.Value
		case strings.HasSuffix(name, "_total") && types[name] == "counter":
			md.counters[family(strings.TrimSuffix(name, "_total"))] += s.Value
		case s.Label("quantile") != "":
			// summary quantile view; recomputed from buckets
		case strings.HasSuffix(name, "_seconds_sum"), strings.HasSuffix(name, "_seconds_count"):
			// timer / summary sidecars; not mergeable, skip
		default:
			md.gauges[family(name)] += s.Value
		}
	}
	for base, h := range accs {
		md.hists[family(strings.TrimSuffix(base, "_seconds_hist"))] =
			obs.RestoreHistogram(h.buckets, h.sum, h.min, h.max)
	}
	return md
}

// mergeMode picks the cross-member fold for a scalar family.
func mergeMode(fam string) string {
	switch {
	case strings.HasSuffix(fam, "_burn_fast"), strings.HasSuffix(fam, "_burn_slow"),
		strings.HasSuffix(fam, "_paging"), strings.HasSuffix(fam, "_hit_ratio"):
		return "max"
	case strings.HasSuffix(fam, "_budget_remaining"):
		return "min"
	}
	return "sum"
}

// ScrapeOnce polls every member once and rebuilds the merged view.
func (a *Aggregator) ScrapeOnce(ctx context.Context) *Snapshot {
	now := a.opts.Now()
	type result struct {
		name string
		data *memberData
		hb   *Heartbeat
		err  error
	}
	results := make(chan result, len(a.members))
	for _, m := range a.members {
		go func(m Member) {
			data, hb, err := a.scrapeMember(ctx, m)
			results <- result{m.Name, data, hb, err}
		}(m)
	}
	byName := map[string]result{}
	for range a.members {
		r := <-results
		byName[r.name] = r
	}

	a.mu.Lock()
	defer a.mu.Unlock()
	for _, m := range a.members {
		st := a.state[m.Name]
		r := byName[m.Name]
		wasUp := st.up
		if r.err == nil {
			st.data, st.heartbeat, st.scrapedAt = r.data, r.hb, now
			st.up, st.err = true, ""
		} else {
			st.up, st.err = false, r.err.Error()
		}
		if st.up != wasUp {
			typ := "member.up"
			if !st.up {
				typ = "member.down"
			}
			a.opts.Events.Emit(typ, map[string]string{"member": m.Name, "url": m.URL, "err": st.err})
		}
	}
	a.snap = a.merge(now)
	return a.snap
}

// merge folds the member states into a snapshot.  Caller holds a.mu.
func (a *Aggregator) merge(now time.Time) *Snapshot {
	reg := obs.NewRegistry("cluster")
	snap := &Snapshot{At: now, merged: reg}
	sums := map[string]float64{}
	mins := map[string]float64{}
	maxs := map[string]float64{}
	classes := map[string]*ClassRollup{}
	var hopServes float64

	for _, m := range a.members {
		st := a.state[m.Name]
		mv := MemberView{Member: st.member, Up: st.up, Err: st.err, AgeSeconds: -1}
		contributes := st.data != nil
		if !st.up {
			mv.Stale = contributes
			if contributes && now.Sub(st.scrapedAt) > a.opts.StaleAfter {
				contributes = false // too old to trust at all
			}
		}
		if st.data != nil {
			mv.AgeSeconds = now.Sub(st.scrapedAt).Seconds()
			mv.Requests = st.data.gauges["httpcache_proxy_requests"]
			if origin := st.data.gauges["httpcache_proxy_origin_fetches"]; mv.Requests > 0 {
				mv.HitRatio = 1 - origin/mv.Requests
			}
			mv.BreakerOpens = st.data.gauges["httpcache_proxy_breaker_opens"]
		}
		if st.heartbeat != nil {
			mv.Heartbeat = st.heartbeat
			mv.Load = float64(st.heartbeat.Load)
			mv.Objects = float64(st.heartbeat.Objects)
		}
		snap.Members = append(snap.Members, mv)
		if !contributes {
			continue
		}

		for fam, v := range st.data.counters {
			sums[fam] += v
		}
		for fam, v := range st.data.gauges {
			switch mergeMode(fam) {
			case "max":
				if cur, ok := maxs[fam]; !ok || v > cur {
					maxs[fam] = v
				}
			case "min":
				if cur, ok := mins[fam]; !ok || v < cur {
					mins[fam] = v
				}
			default:
				sums[fam] += v
			}
		}
		for fam, h := range st.data.hists {
			reg.Histogram("cluster." + fam).Merge(h)
		}
		hopServes += st.data.gauges["fleet_hop_serves"]

		// Per-class SLO rollup from the member's slo_* gauges.
		for fam, v := range st.data.gauges {
			cls, metric, ok := sloFamily(fam)
			if !ok {
				continue
			}
			cr := classes[cls]
			if cr == nil {
				cr = &ClassRollup{Name: cls}
				classes[cls] = cr
			}
			switch metric {
			case "good":
				cr.Good += v
			case "bad":
				cr.Bad += v
			case "burn_fast":
				if v > cr.FastBurn {
					cr.FastBurn = v
				}
			case "burn_slow":
				if v > cr.SlowBurn {
					cr.SlowBurn = v
				}
			case "paging":
				cr.Paging = cr.Paging || v > 0
			}
		}
	}

	for fam, v := range sums {
		reg.Gauge("cluster." + fam).Set(v)
	}
	for fam, v := range maxs {
		reg.Gauge("cluster." + fam).Set(v)
	}
	for fam, v := range mins {
		reg.Gauge("cluster." + fam).Set(v)
	}

	// Deduplicated cluster serving stats: a fleet-hopped request shows
	// up as a request on both the first-contact member and the owner,
	// so the hop serves come back out of the sum.
	snap.Requests = sums["httpcache_proxy_requests"] - hopServes
	snap.OriginFetches = sums["httpcache_proxy_origin_fetches"]
	if snap.Requests > 0 {
		snap.HitRatio = 1 - snap.OriginFetches/snap.Requests
	}
	var up, stale float64
	for _, mv := range snap.Members {
		if mv.Up {
			up++
		}
		if mv.Stale {
			stale++
		}
	}
	reg.Gauge("cluster.members").Set(float64(len(a.members)))
	reg.Gauge("cluster.members_up").Set(up)
	reg.Gauge("cluster.members_stale").Set(stale)
	reg.Gauge("cluster.requests").Set(snap.Requests)
	reg.Gauge("cluster.origin_fetches").Set(snap.OriginFetches)
	reg.Gauge("cluster.hit_ratio").Set(snap.HitRatio)
	for _, name := range sortedClassNames(classes) {
		snap.SLO = append(snap.SLO, *classes[name])
	}
	snap.Values = reg.Values()
	return snap
}

// sloFamily splits an exposition family like slo_interactive_burn_fast
// into its class and metric ("interactive", "burn_fast").
func sloFamily(fam string) (class, metric string, ok bool) {
	rest, found := strings.CutPrefix(fam, "slo_")
	if !found {
		return "", "", false
	}
	for _, metric := range []string{"good", "bad", "burn_fast", "burn_slow", "budget_remaining", "paging"} {
		if cls, found := strings.CutSuffix(rest, "_"+metric); found && cls != "" {
			return cls, metric, true
		}
	}
	return "", "", false
}

func sortedClassNames(m map[string]*ClassRollup) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns the latest merged view (nil before the first
// scrape).
func (a *Aggregator) Snapshot() *Snapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.snap
}

// Start runs the scrape loop until ctx is done.
func (a *Aggregator) Start(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		a.ScrapeOnce(ctx)
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				a.ScrapeOnce(ctx)
			}
		}
	}()
}

// Handler serves the aggregated view: /cluster/metrics as Prometheus
// text and /cluster/snapshot as JSON.  A request before the first
// scrape triggers one synchronously, so the endpoints are usable
// without Start.
func (a *Aggregator) Handler() http.Handler {
	mux := http.NewServeMux()
	latest := func(r *http.Request) *Snapshot {
		if s := a.Snapshot(); s != nil {
			return s
		}
		return a.ScrapeOnce(r.Context())
	}
	mux.HandleFunc("/cluster/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := latest(r)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.WritePrometheus(w, snap.Registry())
	})
	mux.HandleFunc("/cluster/snapshot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(latest(r))
	})
	return mux
}
