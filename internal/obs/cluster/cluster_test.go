package cluster

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"webcache/internal/obs"
)

// fakeMember serves a registry exposition plus an optional heartbeat,
// the way a fleet daemon does.
func fakeMember(t *testing.T, reg *obs.Registry, hb *Heartbeat) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.PrometheusHandler(reg))
	mux.HandleFunc("/fleet/heartbeat", func(w http.ResponseWriter, _ *http.Request) {
		if hb == nil {
			http.Error(w, "fleet disabled", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(hb)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func memberRegistry(name string, requests, origin, hopServes float64, latencies []time.Duration) *obs.Registry {
	reg := obs.NewRegistry(name)
	reg.Counter("httpcache.proxy.sweeps").Add(3)
	reg.Gauge("httpcache.proxy.requests").Set(requests)
	reg.Gauge("httpcache.proxy.origin_fetches").Set(origin)
	reg.Gauge("fleet.hop_serves").Set(hopServes)
	reg.Gauge("slo.interactive.burn.fast").Set(requests / 100) // distinct per member
	reg.Gauge("slo.interactive.good").Set(requests - origin)
	reg.Gauge("slo.interactive.bad").Set(origin)
	h := reg.Histogram("loadgen.latency")
	for _, d := range latencies {
		h.Observe(d)
	}
	return reg
}

// TestAggregatorGolden scrapes two live members plus one unreachable
// one, asserting the additive merge, the lossless histogram union,
// the dedup'd cluster hit ratio, the worst-member SLO fold, and the
// staleness flags — then kills a member and checks its last-good data
// keeps contributing, flagged stale.
func TestAggregatorGolden(t *testing.T) {
	regA := memberRegistry("a", 100, 20, 0, []time.Duration{time.Millisecond, 2 * time.Millisecond})
	regB := memberRegistry("b", 250, 30, 50, []time.Duration{10 * time.Millisecond})
	srvA := fakeMember(t, regA, &Heartbeat{Self: "a", Load: 7, Objects: 40, Members: 2})
	srvB := fakeMember(t, regB, nil)

	events := obs.NewEventLog("agg", nil)
	agg := New([]Member{
		{Name: "a", URL: srvA.URL},
		{Name: "b", URL: srvB.URL},
		{Name: "ghost", URL: "http://127.0.0.1:1"}, // nothing listens here
	}, Options{Events: events})

	snap := agg.ScrapeOnce(context.Background())
	if len(snap.Members) != 3 {
		t.Fatalf("members = %d", len(snap.Members))
	}
	byName := map[string]MemberView{}
	for _, mv := range snap.Members {
		byName[mv.Name] = mv
	}
	if !byName["a"].Up || !byName["b"].Up || byName["ghost"].Up {
		t.Fatalf("up flags: %+v", snap.Members)
	}
	if byName["ghost"].Stale || byName["ghost"].Err == "" || byName["ghost"].AgeSeconds != -1 {
		t.Fatalf("never-scraped member misreported: %+v", byName["ghost"])
	}
	if byName["a"].Heartbeat == nil || byName["a"].Load != 7 || byName["b"].Heartbeat != nil {
		t.Fatalf("heartbeats: a=%+v b=%+v", byName["a"], byName["b"])
	}

	// Counters and gauges sum; hop serves dedup the request count:
	// (100 + 250 - 50) requests, 50 origin -> hit ratio 1 - 50/300.
	if got := snap.Values["cluster.httpcache_proxy_sweeps"]; got != 6 {
		t.Fatalf("summed counter = %v", got)
	}
	if snap.Requests != 300 || snap.OriginFetches != 50 {
		t.Fatalf("requests=%v origin=%v", snap.Requests, snap.OriginFetches)
	}
	if want := 1 - 50.0/300; math.Abs(snap.HitRatio-want) > 1e-9 {
		t.Fatalf("hit ratio = %v, want %v", snap.HitRatio, want)
	}

	// The histogram union: 3 samples across two members, exact count
	// and max.
	if got := snap.Values["cluster.loadgen_latency.count"]; got != 3 {
		t.Fatalf("merged histogram count = %v", got)
	}
	if got := snap.Values["cluster.loadgen_latency.max"]; math.Abs(got-0.010) > 1e-9 {
		t.Fatalf("merged histogram max = %v", got)
	}

	// SLO fold: burn is the worst member (250/100), ledger sums.
	if len(snap.SLO) != 1 || snap.SLO[0].Name != "interactive" {
		t.Fatalf("slo rollup = %+v", snap.SLO)
	}
	if snap.SLO[0].FastBurn != 2.5 || snap.SLO[0].Bad != 50 {
		t.Fatalf("slo rollup = %+v", snap.SLO[0])
	}
	if got := snap.Values["cluster.slo_interactive_burn_fast"]; got != 2.5 {
		t.Fatalf("merged burn gauge = %v (want worst member, not sum)", got)
	}

	if got := snap.Values["cluster.members_up"]; got != 2 {
		t.Fatalf("members_up = %v", got)
	}

	// Kill B: its last-good samples keep contributing, flagged stale.
	srvB.Close()
	snap = agg.ScrapeOnce(context.Background())
	byName = map[string]MemberView{}
	for _, mv := range snap.Members {
		byName[mv.Name] = mv
	}
	if byName["b"].Up || !byName["b"].Stale || byName["b"].Err == "" {
		t.Fatalf("dead member not stale: %+v", byName["b"])
	}
	if byName["b"].AgeSeconds < 0 {
		t.Fatalf("stale member lost its age: %+v", byName["b"])
	}
	if snap.Requests != 300 {
		t.Fatalf("stale member dropped from merge: requests=%v", snap.Requests)
	}
	if got := snap.Values["cluster.members_stale"]; got != 1 {
		t.Fatalf("members_stale = %v", got)
	}

	// Up/down transitions landed in the event log: a and b up, b down.
	counts := map[string]int{}
	for _, ev := range events.Recent(16) {
		counts[ev.Type]++
	}
	if counts["member.up"] != 2 || counts["member.down"] != 1 {
		t.Fatalf("events = %v", counts)
	}
}

// TestAggregatorStaleDrop ages a dead member's last-good data past
// StaleAfter and asserts it stops contributing to the merged totals.
func TestAggregatorStaleDrop(t *testing.T) {
	reg := memberRegistry("a", 100, 10, 0, nil)
	srv := fakeMember(t, reg, nil)
	clock := time.Unix(5_000_000, 0)
	agg := New([]Member{{Name: "a", URL: srv.URL}}, Options{
		StaleAfter: 10 * time.Second,
		Now:        func() time.Time { return clock },
	})
	if snap := agg.ScrapeOnce(context.Background()); snap.Requests != 100 {
		t.Fatalf("live scrape: %v", snap.Requests)
	}
	srv.Close()
	clock = clock.Add(5 * time.Second)
	if snap := agg.ScrapeOnce(context.Background()); snap.Requests != 100 {
		t.Fatalf("fresh-stale data dropped early: %v", snap.Requests)
	}
	clock = clock.Add(30 * time.Second)
	snap := agg.ScrapeOnce(context.Background())
	if snap.Requests != 0 {
		t.Fatalf("ancient data still contributing: %v", snap.Requests)
	}
	if !snap.Members[0].Stale {
		t.Fatalf("member view: %+v", snap.Members[0])
	}
}

// TestAggregatorHandler drives the two HTTP surfaces.
func TestAggregatorHandler(t *testing.T) {
	reg := memberRegistry("a", 10, 1, 0, []time.Duration{time.Millisecond})
	srv := fakeMember(t, reg, nil)
	agg := New([]Member{{Name: "a", URL: srv.URL}}, Options{})
	h := agg.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/cluster/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/cluster/metrics: %d", rec.Code)
	}
	body := rec.Body.String()
	if n, err := obs.ParsePrometheusText(strings.NewReader(body)); err != nil || n == 0 {
		t.Fatalf("cluster exposition invalid: n=%d err=%v\n%s", n, err, body)
	}
	if !strings.Contains(body, "webcache_cluster_hit_ratio") {
		t.Fatalf("missing cluster_hit_ratio:\n%s", body)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/cluster/snapshot", nil))
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot JSON: %v", err)
	}
	if len(snap.Members) != 1 || snap.Requests != 10 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestParseMembers(t *testing.T) {
	ms, err := ParseMembers("a=http://h1:1, h2:2")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0].Name != "a" || ms[0].URL != "http://h1:1" ||
		ms[1].Name != "member-1" || ms[1].URL != "http://h2:2" {
		t.Fatalf("parsed %+v", ms)
	}
	if _, err := ParseMembers(" , "); err == nil {
		t.Fatal("accepted empty member list")
	}
}
