package directory

import (
	"math/rand"
	"testing"
	"testing/quick"

	"webcache/internal/trace"
)

func implementations() []Directory {
	return []Directory{NewExact(), NewBloom(1000, 0.01)}
}

func TestDirectoryAddRemove(t *testing.T) {
	for _, d := range implementations() {
		t.Run(d.Name(), func(t *testing.T) {
			d.Add(1)
			d.Add(2)
			if !d.MayContain(1) || !d.MayContain(2) {
				t.Fatal("added objects missing")
			}
			if d.Len() != 2 {
				t.Fatalf("len = %d, want 2", d.Len())
			}
			d.Remove(1)
			if d.Len() != 1 {
				t.Fatalf("len after remove = %d", d.Len())
			}
			if d.Name() == "exact" && d.MayContain(1) {
				t.Error("exact directory false positive after remove")
			}
			if !d.MayContain(2) {
				t.Error("false negative after unrelated remove")
			}
		})
	}
}

func TestDirectoryDuplicateAddIdempotent(t *testing.T) {
	for _, d := range implementations() {
		t.Run(d.Name(), func(t *testing.T) {
			d.Add(5)
			d.Add(5)
			if d.Len() != 1 {
				t.Fatalf("len = %d, want 1", d.Len())
			}
			d.Remove(5)
			if d.MayContain(5) && d.Name() == "exact" {
				t.Error("still present after remove")
			}
			if d.Len() != 0 {
				t.Fatalf("len = %d, want 0", d.Len())
			}
		})
	}
}

func TestDirectoryRemoveAbsentHarmless(t *testing.T) {
	for _, d := range implementations() {
		t.Run(d.Name(), func(t *testing.T) {
			d.Add(1)
			d.Remove(99) // never added: must not disturb 1
			if !d.MayContain(1) {
				t.Error("false negative after removing absent key")
			}
			if d.Len() != 1 {
				t.Errorf("len = %d, want 1", d.Len())
			}
		})
	}
}

func TestDirectoryReset(t *testing.T) {
	for _, d := range implementations() {
		t.Run(d.Name(), func(t *testing.T) {
			for i := trace.ObjectID(0); i < 50; i++ {
				d.Add(i)
			}
			d.Reset()
			if d.Len() != 0 {
				t.Fatalf("len after reset = %d", d.Len())
			}
			fps := 0
			for i := trace.ObjectID(0); i < 50; i++ {
				if d.MayContain(i) {
					fps++
				}
			}
			if d.Name() == "exact" && fps != 0 {
				t.Errorf("exact: %d present after reset", fps)
			}
			if fps > 5 {
				t.Errorf("%d of 50 still reported present after reset", fps)
			}
		})
	}
}

func TestBloomMemorySmallerThanExact(t *testing.T) {
	const n = 10000
	e := NewExact()
	b := NewBloom(n, 0.01)
	for i := trace.ObjectID(0); i < n; i++ {
		e.Add(i)
		b.Add(i)
	}
	if b.MemoryBytes() >= e.MemoryBytes() {
		t.Errorf("bloom %d bytes not smaller than exact %d bytes", b.MemoryBytes(), e.MemoryBytes())
	}
	if r := b.FPRate(); r > 0.03 {
		t.Errorf("bloom FP rate %.4f above ~1%% design point", r)
	}
}

func TestBloomFalsePositivesBounded(t *testing.T) {
	const n = 2000
	b := NewBloom(n, 0.01)
	for i := trace.ObjectID(0); i < n; i++ {
		b.Add(i)
	}
	fps := 0
	const probes = 50000
	for i := trace.ObjectID(n); i < n+probes; i++ {
		if b.MayContain(i) {
			fps++
		}
	}
	if rate := float64(fps) / probes; rate > 0.03 {
		t.Errorf("FP rate %.4f, want <= ~0.01", rate)
	}
}

// Property: no directory ever produces a false negative under random
// add/remove churn.
func TestPropNoFalseNegatives(t *testing.T) {
	for _, mk := range []func() Directory{
		func() Directory { return NewExact() },
		func() Directory { return NewBloom(500, 0.01) },
	} {
		d := mk()
		f := func(seed int64, ops []uint8) bool {
			d.Reset()
			rng := rand.New(rand.NewSource(seed))
			live := map[trace.ObjectID]bool{}
			for _, op := range ops {
				obj := trace.ObjectID(rng.Intn(200))
				if op%2 == 0 {
					d.Add(obj)
					live[obj] = true
				} else {
					d.Remove(obj)
					delete(live, obj)
				}
			}
			if d.Len() != len(live) {
				return false
			}
			for obj := range live {
				if !d.MayContain(obj) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
			t.Errorf("%s: %v", d.Name(), err)
		}
	}
}
