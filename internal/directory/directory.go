// Package directory implements the proxy-side lookup directory over a
// P2P client cache (paper §4.2).  When a request misses in the local
// proxy cache, the proxy consults its directory to decide whether to
// redirect the request into its P2P client cache.
//
// Two representations are provided, exactly as the paper proposes:
//
//   - Exact-Directory: a hash table of the objectIds of every object
//     cached in the P2P client cache — no false positives, memory
//     proportional to the cached population;
//   - Bloom filter: a counting Bloom filter — bounded memory with a
//     configurable false-positive ratio (false positives cost a wasted
//     P2P lookup, which the simulator charges and the ablation bench
//     measures).
package directory

import (
	"sort"

	"webcache/internal/bloom"
	"webcache/internal/trace"
)

// Directory tracks which objects a proxy believes live in its P2P
// client cache.
type Directory interface {
	// Name identifies the representation in metrics.
	Name() string
	// Add records that obj is now stored in the P2P client cache.
	Add(obj trace.ObjectID)
	// Remove records that obj was evicted from the P2P client cache.
	Remove(obj trace.ObjectID)
	// MayContain reports whether obj may be stored (exact for
	// Exact-Directory; false positives possible for Bloom).
	MayContain(obj trace.ObjectID) bool
	// Len is the number of objects currently recorded (net adds).
	Len() int
	// MemoryBytes estimates the directory's memory footprint.
	MemoryBytes() uint64
	// Objects snapshots the recorded object ids in ascending order.
	Objects() []trace.ObjectID
	// Reset clears the directory.
	Reset()
}

// Exact is the paper's Exact-Directory: a hashtable of objectIds.
type Exact struct {
	set map[trace.ObjectID]struct{}
}

// NewExact creates an empty Exact-Directory.
func NewExact() *Exact {
	return &Exact{set: make(map[trace.ObjectID]struct{})}
}

// Name implements Directory.
func (d *Exact) Name() string { return "exact" }

// Add implements Directory.
func (d *Exact) Add(obj trace.ObjectID) { d.set[obj] = struct{}{} }

// Remove implements Directory.
func (d *Exact) Remove(obj trace.ObjectID) { delete(d.set, obj) }

// MayContain implements Directory (and is exact).
func (d *Exact) MayContain(obj trace.ObjectID) bool {
	_, ok := d.set[obj]
	return ok
}

// Len implements Directory.
func (d *Exact) Len() int { return len(d.set) }

// MemoryBytes implements Directory: the paper's exact directory stores
// a 160-bit SHA-1 objectId per entry (20 bytes) plus hash-table
// overhead (~1.5x load factor, 8-byte buckets).
func (d *Exact) MemoryBytes() uint64 {
	return uint64(len(d.set)) * (20 + 12)
}

// Reset implements Directory.
func (d *Exact) Reset() { d.set = make(map[trace.ObjectID]struct{}) }

var _ Directory = (*Exact)(nil)

// Bloom is the counting-Bloom-filter directory.
type Bloom struct {
	filter *bloom.Counting
	// present guards Remove against keys never added (removing an
	// absent key would corrupt the filter) and provides Len.  In a
	// deployment this knowledge is implicit in the store receipts the
	// proxy processes; it is not counted as directory memory.
	present map[trace.ObjectID]struct{}
}

// NewBloom creates a Bloom directory sized for capacity objects at the
// given false-positive rate.
func NewBloom(capacity int, fpRate float64) *Bloom {
	return &Bloom{
		filter:  bloom.NewCountingForCapacity(capacity, fpRate),
		present: make(map[trace.ObjectID]struct{}, capacity),
	}
}

// Name implements Directory.
func (d *Bloom) Name() string { return "bloom" }

// Add implements Directory.
func (d *Bloom) Add(obj trace.ObjectID) {
	if _, dup := d.present[obj]; dup {
		return
	}
	d.present[obj] = struct{}{}
	d.filter.Add(uint64(obj))
}

// Remove implements Directory.
func (d *Bloom) Remove(obj trace.ObjectID) {
	if _, ok := d.present[obj]; !ok {
		return
	}
	delete(d.present, obj)
	d.filter.Remove(uint64(obj))
}

// MayContain implements Directory; false positives possible.
func (d *Bloom) MayContain(obj trace.ObjectID) bool {
	return d.filter.MayContain(uint64(obj))
}

// Len implements Directory.
func (d *Bloom) Len() int { return len(d.present) }

// MemoryBytes implements Directory: the filter's packed counters.
func (d *Bloom) MemoryBytes() uint64 { return d.filter.MemoryBytes() }

// FPRate exposes the filter's estimated false-positive rate.
func (d *Bloom) FPRate() float64 { return d.filter.EstimatedFPRate() }

// Reset implements Directory.
func (d *Bloom) Reset() {
	m, k := d.filter.M(), d.filter.K()
	f, err := bloom.NewCounting(m, k)
	if err != nil {
		panic("directory: rebuilding counting filter: " + err.Error())
	}
	d.filter = f
	d.present = make(map[trace.ObjectID]struct{})
}

var _ Directory = (*Bloom)(nil)

// sortedIDs snapshots a set's keys in ascending order.
func sortedIDs[V any](m map[trace.ObjectID]V) []trace.ObjectID {
	out := make([]trace.ObjectID, 0, len(m))
	for obj := range m {
		out = append(out, obj)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Objects implements Directory.
func (d *Exact) Objects() []trace.ObjectID { return sortedIDs(d.set) }

// Objects implements Directory.
func (d *Bloom) Objects() []trace.ObjectID { return sortedIDs(d.present) }
