package cache

import "webcache/internal/trace"

// Belady implements the clairvoyant MIN/OPT replacement (Belady 1966):
// evict the cached object whose next reference is farthest in the
// future.  For unit-size objects it minimizes misses over any request
// sequence, which makes it the natural yardstick for how much headroom
// the online policies (LFU, greedy-dual, GDSF) leave on the table —
// the BenchmarkBelady harness reports exactly that gap.
//
// Clairvoyance comes from an index of the full request sequence built
// up front; Access must be fed the same sequence positions in order.
type Belady struct {
	capacity uint64
	used     uint64
	entries  map[trace.ObjectID]Entry
	heap     *keyedHeap // key = -nextUse (max-heap over next use)
	// nextUse[obj] is a queue of future positions of obj.
	nextUse map[trace.ObjectID][]int
	clock   int
}

// never is the key for objects with no future reference: the most
// attractive victims.
const never = 1 << 40

// NewBelady builds the oracle for a request sequence.
func NewBelady(capacity uint64, sequence []trace.ObjectID) *Belady {
	next := make(map[trace.ObjectID][]int)
	for i, obj := range sequence {
		next[obj] = append(next[obj], i)
	}
	return &Belady{
		capacity: capacity,
		entries:  make(map[trace.ObjectID]Entry),
		heap:     newKeyedHeap(64),
		nextUse:  next,
	}
}

// Name implements Policy.
func (c *Belady) Name() string { return "belady" }

// futureOf pops positions of obj up to the current clock and returns
// the next future position (or never).
func (c *Belady) futureOf(obj trace.ObjectID) int {
	q := c.nextUse[obj]
	for len(q) > 0 && q[0] <= c.clock {
		q = q[1:]
	}
	c.nextUse[obj] = q
	if len(q) == 0 {
		return never
	}
	return q[0]
}

// Tick advances the oracle's position in the request sequence.  Call
// it once per request, before Access/Add for that request.
func (c *Belady) Tick() { c.clock++ }

// Access implements Policy.
func (c *Belady) Access(obj trace.ObjectID) bool {
	if _, ok := c.entries[obj]; !ok {
		return false
	}
	// Re-key by the next future use; farther = evicted sooner, so the
	// min-heap holds -nextUse.
	c.heap.update(obj, -float64(c.futureOf(obj)))
	return true
}

// Add implements Policy.  True MIN may *bypass*: when the incoming
// object's next use is farther than every cached object's, caching it
// would only displace something more useful, so it is not cached.
func (c *Belady) Add(e Entry) []Entry {
	_, present := c.entries[e.Obj]
	if err := checkAddable(c.Name(), e, present, c.capacity); err != nil {
		return nil
	}
	newNext := c.futureOf(e.Obj)
	if c.used+uint64(e.Size) > c.capacity {
		if _, farthest, ok := c.heap.min(); ok && float64(newNext) >= -farthest {
			return nil // bypass: everything cached is re-used sooner
		}
	}
	evicted := evictFor(e.Size, &c.used, c.capacity, func() Entry {
		obj, _ := c.heap.popMin()
		victim := c.entries[obj]
		delete(c.entries, obj)
		return victim
	}, nil)
	c.entries[e.Obj] = e
	c.heap.push(e.Obj, -float64(newNext))
	c.used += uint64(e.Size)
	return evicted
}

// Remove implements Policy.
func (c *Belady) Remove(obj trace.ObjectID) (Entry, bool) {
	e, ok := c.entries[obj]
	if !ok {
		return Entry{}, false
	}
	c.heap.remove(obj)
	delete(c.entries, obj)
	c.used -= uint64(e.Size)
	return e, true
}

// Contains implements Policy.
func (c *Belady) Contains(obj trace.ObjectID) bool {
	_, ok := c.entries[obj]
	return ok
}

// Peek implements Policy.
func (c *Belady) Peek(obj trace.ObjectID) (Entry, bool) {
	e, ok := c.entries[obj]
	return e, ok
}

// Len implements Policy.
func (c *Belady) Len() int { return len(c.entries) }

// Used implements Policy.
func (c *Belady) Used() uint64 { return c.used }

// Capacity implements Policy.
func (c *Belady) Capacity() uint64 { return c.capacity }

// Objects implements Policy.
func (c *Belady) Objects() []trace.ObjectID { return sortedObjects(c.entries) }

var _ Policy = (*Belady)(nil)

// ReplaySingleCache replays a unit-size request sequence against one
// cache under the given policy and returns the miss count.  For
// *Belady the oracle clock is advanced automatically.  This is the
// harness behind the policy-vs-optimal comparisons.
func ReplaySingleCache(p Policy, sequence []trace.ObjectID) (misses int) {
	oracle, isOracle := p.(*Belady)
	for i, obj := range sequence {
		if isOracle {
			oracle.clock = i
		}
		if p.Access(obj) {
			continue
		}
		misses++
		if lfu, ok := p.(*LFU); ok {
			lfu.RecordMiss(obj)
		}
		p.Add(Entry{Obj: obj, Size: 1, Cost: 1})
	}
	return misses
}
