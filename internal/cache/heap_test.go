package cache

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"webcache/internal/trace"
)

func TestKeyedHeapPushPopOrder(t *testing.T) {
	h := newKeyedHeap(8)
	keys := []float64{5, 1, 4, 2, 3}
	for i, k := range keys {
		h.push(trace.ObjectID(i), k)
	}
	var got []float64
	for h.len() > 0 {
		_, k := h.popMin()
		got = append(got, k)
	}
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("pop order not sorted: %v", got)
	}
}

func TestKeyedHeapTieBreakFIFO(t *testing.T) {
	h := newKeyedHeap(8)
	for i := 0; i < 5; i++ {
		h.push(trace.ObjectID(i), 1.0)
	}
	for i := 0; i < 5; i++ {
		obj, _ := h.popMin()
		if obj != trace.ObjectID(i) {
			t.Fatalf("tie-break not FIFO: pop %d gave %d", i, obj)
		}
	}
}

func TestKeyedHeapUpdate(t *testing.T) {
	h := newKeyedHeap(8)
	h.push(1, 10)
	h.push(2, 20)
	h.push(3, 30)
	h.update(3, 5) // decrease
	if obj, _ := h.popMin(); obj != 3 {
		t.Fatalf("after decrease, min = %d, want 3", obj)
	}
	h.update(1, 100) // increase
	if obj, _ := h.popMin(); obj != 2 {
		t.Fatalf("after increase, min = %d, want 2", obj)
	}
	if k, ok := h.key(1); !ok || k != 100 {
		t.Fatalf("key(1) = %v %v", k, ok)
	}
}

func TestKeyedHeapRemove(t *testing.T) {
	h := newKeyedHeap(8)
	for i := 0; i < 10; i++ {
		h.push(trace.ObjectID(i), float64(10-i))
	}
	if !h.remove(9) { // current min
		t.Fatal("remove(9) = false")
	}
	if h.remove(9) {
		t.Fatal("double remove succeeded")
	}
	obj, k := h.popMin()
	if obj != 8 || k != 2 {
		t.Fatalf("min after remove = (%d, %g), want (8, 2)", obj, k)
	}
	if h.contains(9) {
		t.Fatal("contains removed object")
	}
}

func TestKeyedHeapPanics(t *testing.T) {
	h := newKeyedHeap(2)
	h.push(1, 1)
	assertPanics(t, "dup push", func() { h.push(1, 2) })
	assertPanics(t, "update missing", func() { h.update(42, 1) })
	h.popMin()
	assertPanics(t, "pop empty", func() { h.popMin() })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", name)
		}
	}()
	f()
}

// Property: against a brute-force model, the heap returns the same
// min sequence under random pushes, updates, removes.
func TestPropKeyedHeapMatchesModel(t *testing.T) {
	type modelItem struct {
		key float64
		seq uint64
	}
	f := func(seed int64, opsRaw []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		h := newKeyedHeap(4)
		model := map[trace.ObjectID]modelItem{}
		var seq uint64
		next := trace.ObjectID(0)
		modelMin := func() (trace.ObjectID, bool) {
			var best trace.ObjectID
			found := false
			var bk modelItem
			for o, it := range model {
				if !found || it.key < bk.key || (it.key == bk.key && it.seq < bk.seq) {
					best, bk, found = o, it, true
				}
			}
			return best, found
		}
		for _, op := range opsRaw {
			switch op % 4 {
			case 0:
				k := float64(rng.Intn(50))
				h.push(next, k)
				seq++
				model[next] = modelItem{k, seq}
				next++
			case 1:
				if len(model) == 0 {
					continue
				}
				o := smallestKeyOf(model)
				k := float64(rng.Intn(50))
				h.update(o, k)
				seq++
				model[o] = modelItem{k, seq}
			case 2:
				if len(model) == 0 {
					continue
				}
				o := smallestKeyOf(model)
				h.remove(o)
				delete(model, o)
			case 3:
				if len(model) == 0 {
					if h.len() != 0 {
						return false
					}
					continue
				}
				want, _ := modelMin()
				got, _ := h.popMin()
				if got != want {
					return false
				}
				delete(model, got)
			}
			if h.len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func smallestKeyOf[V any](m map[trace.ObjectID]V) trace.ObjectID {
	var min trace.ObjectID
	first := true
	for k := range m {
		if first || k < min {
			min = k
			first = false
		}
	}
	return min
}
