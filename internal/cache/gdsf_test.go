package cache

import (
	"math/rand"
	"testing"

	"webcache/internal/trace"
)

func TestGDSFBasicCycle(t *testing.T) {
	c := NewGDSF(3)
	if c.Access(1) {
		t.Fatal("hit on empty cache")
	}
	c.Add(unit(1))
	if !c.Access(1) || !c.Contains(1) || c.Len() != 1 || c.Used() != 1 {
		t.Fatal("state wrong after add")
	}
	if got := c.Frequency(1); got != 2 { // 1 on add + 1 access
		t.Errorf("frequency = %g, want 2", got)
	}
	if _, ok := c.Peek(1); !ok {
		t.Error("peek missed")
	}
	if _, ok := c.Remove(1); !ok || c.Len() != 0 {
		t.Error("remove failed")
	}
	if _, ok := c.Remove(1); ok {
		t.Error("double remove")
	}
}

func TestGDSFFrequencyProtects(t *testing.T) {
	c := NewGDSF(2)
	c.Add(Entry{Obj: 1, Size: 1, Cost: 1})
	c.Add(Entry{Obj: 2, Size: 1, Cost: 1})
	// Make 1 frequent: H(1) = L + 3*1, H(2) = L + 1.
	c.Access(1)
	c.Access(1)
	ev := c.Add(Entry{Obj: 3, Size: 1, Cost: 1})
	if len(ev) != 1 || ev[0].Obj != 2 {
		t.Fatalf("evicted %v, want 2 (frequency protects 1)", ev)
	}
}

func TestGDSFSizeAware(t *testing.T) {
	c := NewGDSF(10)
	c.Add(Entry{Obj: 1, Size: 5, Cost: 5})  // density 1
	c.Add(Entry{Obj: 2, Size: 1, Cost: 10}) // density 10
	ev := c.Add(Entry{Obj: 3, Size: 5, Cost: 50})
	if len(ev) != 1 || ev[0].Obj != 1 {
		t.Fatalf("evicted %v, want low-density object 1", ev)
	}
}

func TestGDSFFrequencyResetsOnReAdd(t *testing.T) {
	c := NewGDSF(2)
	c.Add(unit(1))
	c.Access(1)
	c.Access(1)
	c.Remove(1)
	c.Add(unit(1))
	if got := c.Frequency(1); got != 1 {
		t.Errorf("frequency after re-add = %g, want 1", got)
	}
}

func TestGDSFInflationMonotone(t *testing.T) {
	c := NewGDSF(4)
	rng := rand.New(rand.NewSource(2))
	last := 0.0
	for i := 0; i < 2000; i++ {
		obj := trace.ObjectID(rng.Intn(40))
		if !c.Access(obj) {
			c.Add(Entry{Obj: obj, Size: 1, Cost: 1 + rng.Float64()*4})
		}
		if l := c.Inflation(); l < last {
			t.Fatalf("inflation decreased %g -> %g", last, l)
		} else {
			last = l
		}
		if c.Used() > c.Capacity() {
			t.Fatal("over capacity")
		}
	}
}

// GDSF should beat plain greedy-dual when popularity varies but cost
// does not: the frequency term is the only signal.
func TestGDSFBeatsGDOnFrequencySkew(t *testing.T) {
	workload := func(p Policy) float64 {
		rng := rand.New(rand.NewSource(9))
		misses := 0.0
		for i := 0; i < 30000; i++ {
			var obj trace.ObjectID
			if rng.Float64() < 0.6 {
				obj = trace.ObjectID(rng.Intn(20)) // hot set
			} else {
				obj = trace.ObjectID(20 + rng.Intn(2000)) // cold mass
			}
			if !p.Access(obj) {
				misses++
				p.Add(Entry{Obj: obj, Size: 1, Cost: 1})
			}
		}
		return misses
	}
	gdsf := workload(NewGDSF(25))
	gd := workload(NewGreedyDual(25))
	if gdsf >= gd {
		t.Errorf("GDSF misses %g >= GD misses %g on frequency-skewed workload", gdsf, gd)
	}
}

func TestGDSFOversizeAndDuplicate(t *testing.T) {
	c := NewGDSF(4)
	c.Add(unit(1))
	if ev := c.Add(Entry{Obj: 2, Size: 100, Cost: 1}); len(ev) != 0 || c.Contains(2) {
		t.Error("oversize entry mishandled")
	}
	assertPanics(t, "dup add", func() { c.Add(unit(1)) })
}
