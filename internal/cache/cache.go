// Package cache implements the replacement policies the paper's
// caching schemes use: LRU, LFU (in-cache and perfect variants), the
// greedy-dual algorithm (Young 1998) that Hier-GD runs at proxies and
// client caches, and the offline cost-benefit placement that gives
// FC/FC-EC their coordinated upper bound.
//
// All policies implement the Policy interface so the simulator can
// compose them into the seven caching schemes.  Capacities and sizes
// are in abstract cache units; the paper fixes Size==1 ("all objects
// have the same size") but the policies handle variable sizes.
package cache

import (
	"fmt"
	"sort"

	"webcache/internal/trace"
)

// Entry is one cached object with the metadata replacement decisions
// need: its size and the cost that was paid to fetch it (the
// greedy-dual "cost" — in this system, the fetch latency).
type Entry struct {
	Obj  trace.ObjectID
	Size uint32
	Cost float64
}

// Policy is a replacement policy managing one cache's contents.
//
// The access protocol mirrors a cache lookup/fill cycle:
//
//	if p.Access(obj) { hit }          // touches replacement metadata
//	else { fetch...; evicted := p.Add(Entry{...}) }
//
// Add returns the entries evicted to make room (possibly several under
// variable sizes, or none).  An entry larger than the whole cache, or
// with zero size (which would make cost/size H-values infinite), is
// rejected: Add returns no evictions and does not cache it — callers
// can detect this with Contains.
type Policy interface {
	// Name identifies the policy in metrics and test output.
	Name() string
	// Access reports whether obj is cached, updating replacement
	// metadata (recency, frequency, or H-value) on a hit.
	Access(obj trace.ObjectID) bool
	// Add inserts an entry, evicting as needed; it returns the evicted
	// entries.  Adding an already-present object is a programming
	// error and panics (callers must use Access first).
	//
	// The returned slice is a scratch buffer owned by the policy and is
	// only valid until the next Add on the same policy: callers must
	// consume (or copy) it before inserting again.  This keeps the
	// steady-state eviction path allocation-free.
	Add(e Entry) []Entry
	// Remove deletes obj if present, returning its entry.
	Remove(obj trace.ObjectID) (Entry, bool)
	// Contains reports presence without touching metadata.
	Contains(obj trace.ObjectID) bool
	// Peek returns the stored entry without touching metadata.
	Peek(obj trace.ObjectID) (Entry, bool)
	// Len is the number of cached objects.
	Len() int
	// Used is the total size of cached objects.
	Used() uint64
	// Capacity is the configured maximum total size.
	Capacity() uint64
	// Objects lists the cached object ids in ascending order (a
	// snapshot; mutation-safe to iterate).
	Objects() []trace.ObjectID
}

// evictFor pops victims via pop() until used+need fits cap.
// Shared by the policy implementations.
func evictFor(need uint32, used *uint64, capacity uint64, pop func() Entry, out []Entry) []Entry {
	for *used+uint64(need) > capacity {
		v := pop()
		*used -= uint64(v.Size)
		out = append(out, v)
	}
	return out
}

func checkAddable(name string, e Entry, contains bool, capacity uint64) error {
	if contains {
		panic(fmt.Sprintf("cache: %s.Add(%d): object already cached", name, e.Obj))
	}
	if e.Size == 0 {
		// A zero-size entry would divide Cost/Size to +Inf in the
		// greedy-dual H value and pin the object forever; reject it like
		// an oversized entry instead of caching it.
		return fmt.Errorf("cache: entry %d has zero size", e.Obj)
	}
	if uint64(e.Size) > capacity {
		return fmt.Errorf("cache: entry %d (size %d) exceeds capacity %d", e.Obj, e.Size, capacity)
	}
	return nil
}

// sortedObjects returns the keys of an entry map in ascending order so
// iteration-dependent behaviour stays deterministic.
func sortedObjects[V any](m map[trace.ObjectID]V) []trace.ObjectID {
	out := make([]trace.ObjectID, 0, len(m))
	for obj := range m {
		out = append(out, obj)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
