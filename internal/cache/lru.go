package cache

import "webcache/internal/trace"

// LRU is a least-recently-used cache.  It is not one of the paper's
// headline policies but serves as a baseline comparator (the paper
// cites Korupolu & Dahlin's finding that greedy-dual beats LRU and LFU,
// which BenchmarkPolicies and the scheme tests reproduce).
type LRU struct {
	capacity uint64
	used     uint64
	entries  map[trace.ObjectID]*lruNode
	// Doubly linked list through sentinel: head.next is most recently
	// used, sentinel.prev is the eviction victim.
	sentinel lruNode
	// free chains recycled nodes (via next) so steady-state Add reuses
	// the nodes its own evictions release instead of allocating.
	free *lruNode
	// scratch backs the slice Add returns; see Policy.Add.
	scratch []Entry
}

type lruNode struct {
	entry      Entry
	prev, next *lruNode
}

// NewLRU returns an LRU cache holding at most capacity size units.
func NewLRU(capacity uint64) *LRU {
	c := &LRU{
		capacity: capacity,
		entries:  make(map[trace.ObjectID]*lruNode),
	}
	c.sentinel.prev = &c.sentinel
	c.sentinel.next = &c.sentinel
	return c
}

// Name implements Policy.
func (c *LRU) Name() string { return "lru" }

func (c *LRU) unlink(n *lruNode) {
	n.prev.next = n.next
	n.next.prev = n.prev
}

func (c *LRU) pushFront(n *lruNode) {
	n.next = c.sentinel.next
	n.prev = &c.sentinel
	n.next.prev = n
	c.sentinel.next = n
}

// Access implements Policy.
func (c *LRU) Access(obj trace.ObjectID) bool {
	n, ok := c.entries[obj]
	if !ok {
		return false
	}
	c.unlink(n)
	c.pushFront(n)
	return true
}

// Add implements Policy.
func (c *LRU) Add(e Entry) []Entry {
	_, present := c.entries[e.Obj]
	if err := checkAddable(c.Name(), e, present, c.capacity); err != nil {
		return nil
	}
	c.scratch = evictFor(e.Size, &c.used, c.capacity, func() Entry {
		victim := c.sentinel.prev
		c.unlink(victim)
		delete(c.entries, victim.entry.Obj)
		victim.prev = nil
		victim.next = c.free
		c.free = victim
		return victim.entry
	}, c.scratch[:0])
	evicted := c.scratch
	n := c.free
	if n != nil {
		c.free = n.next
		n.entry = e
		n.next = nil
	} else {
		n = &lruNode{entry: e}
	}
	c.entries[e.Obj] = n
	c.pushFront(n)
	c.used += uint64(e.Size)
	return evicted
}

// Remove implements Policy.
func (c *LRU) Remove(obj trace.ObjectID) (Entry, bool) {
	n, ok := c.entries[obj]
	if !ok {
		return Entry{}, false
	}
	c.unlink(n)
	delete(c.entries, obj)
	c.used -= uint64(n.entry.Size)
	e := n.entry
	n.prev = nil
	n.next = c.free
	c.free = n
	return e, true
}

// Contains implements Policy.
func (c *LRU) Contains(obj trace.ObjectID) bool {
	_, ok := c.entries[obj]
	return ok
}

// Peek implements Policy.
func (c *LRU) Peek(obj trace.ObjectID) (Entry, bool) {
	n, ok := c.entries[obj]
	if !ok {
		return Entry{}, false
	}
	return n.entry, true
}

// Len implements Policy.
func (c *LRU) Len() int { return len(c.entries) }

// Used implements Policy.
func (c *LRU) Used() uint64 { return c.used }

// Capacity implements Policy.
func (c *LRU) Capacity() uint64 { return c.capacity }

var _ Policy = (*LRU)(nil)

// Objects lists the cached object ids in ascending order.
func (c *LRU) Objects() []trace.ObjectID { return sortedObjects(c.entries) }
