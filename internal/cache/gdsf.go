package cache

import "webcache/internal/trace"

// GDSF implements GreedyDual-Size-Frequency (Cherkasova 1998), the
// frequency-weighted refinement of greedy-dual that became the Squid
// default:
//
//	H(o) = L + Frequency(o) * Cost(o) / Size(o)
//
// It is not part of the paper's design but is the natural upgrade path
// for Hier-GD's proxy and client caches, so the library offers it as
// an extension (Config.GDSF in the simulator) together with an
// ablation comparison in the benchmark harness.
type GDSF struct {
	capacity  uint64
	used      uint64
	inflation float64
	entries   map[trace.ObjectID]Entry
	freq      map[trace.ObjectID]float64
	heap      *keyedHeap
	// scratch backs the slice Add returns; see Policy.Add.
	scratch []Entry
}

// NewGDSF returns a GDSF cache of the given capacity.
func NewGDSF(capacity uint64) *GDSF {
	return &GDSF{
		capacity: capacity,
		entries:  make(map[trace.ObjectID]Entry),
		freq:     make(map[trace.ObjectID]float64),
		heap:     newKeyedHeap(64),
	}
}

// Name implements Policy.
func (c *GDSF) Name() string { return "gdsf" }

func (c *GDSF) hvalue(e Entry) float64 {
	return c.inflation + c.freq[e.Obj]*e.Cost/float64(e.Size)
}

// Access implements Policy: a hit bumps the in-cache frequency and
// refreshes H with the current inflation.
func (c *GDSF) Access(obj trace.ObjectID) bool {
	e, ok := c.entries[obj]
	if !ok {
		return false
	}
	c.freq[obj]++
	c.heap.update(obj, c.hvalue(e))
	return true
}

// Add implements Policy.
func (c *GDSF) Add(e Entry) []Entry {
	_, present := c.entries[e.Obj]
	if err := checkAddable(c.Name(), e, present, c.capacity); err != nil {
		return nil
	}
	c.scratch = evictFor(e.Size, &c.used, c.capacity, func() Entry {
		obj, h := c.heap.popMin()
		c.inflation = h
		victim := c.entries[obj]
		delete(c.entries, obj)
		delete(c.freq, obj)
		return victim
	}, c.scratch[:0])
	evicted := c.scratch
	c.entries[e.Obj] = e
	c.freq[e.Obj] = 1
	c.heap.push(e.Obj, c.hvalue(e))
	c.used += uint64(e.Size)
	return evicted
}

// Remove implements Policy.
func (c *GDSF) Remove(obj trace.ObjectID) (Entry, bool) {
	e, ok := c.entries[obj]
	if !ok {
		return Entry{}, false
	}
	c.heap.remove(obj)
	delete(c.entries, obj)
	delete(c.freq, obj)
	c.used -= uint64(e.Size)
	return e, true
}

// Contains implements Policy.
func (c *GDSF) Contains(obj trace.ObjectID) bool {
	_, ok := c.entries[obj]
	return ok
}

// Peek implements Policy.
func (c *GDSF) Peek(obj trace.ObjectID) (Entry, bool) {
	e, ok := c.entries[obj]
	return e, ok
}

// Frequency exposes the in-cache frequency counter.
func (c *GDSF) Frequency(obj trace.ObjectID) float64 { return c.freq[obj] }

// Inflation exposes the current L value.
func (c *GDSF) Inflation() float64 { return c.inflation }

// Len implements Policy.
func (c *GDSF) Len() int { return len(c.entries) }

// Used implements Policy.
func (c *GDSF) Used() uint64 { return c.used }

// Capacity implements Policy.
func (c *GDSF) Capacity() uint64 { return c.capacity }

// Objects implements Policy.
func (c *GDSF) Objects() []trace.ObjectID { return sortedObjects(c.entries) }

var _ Policy = (*GDSF)(nil)
