package cache

import "webcache/internal/trace"

// keyedHeap is a binary min-heap over objects keyed by a float64
// priority, with a position index for in-place key updates and
// removals.  Ties break by insertion sequence (FIFO), which makes every
// policy built on it fully deterministic.
//
// It is the engine under both the LFU policy (key = frequency) and the
// greedy-dual policy (key = H value).
type keyedHeap struct {
	items []heapItem
	pos   map[trace.ObjectID]int
	seq   uint64
}

type heapItem struct {
	obj trace.ObjectID
	key float64
	seq uint64
}

func newKeyedHeap(hint int) *keyedHeap {
	return &keyedHeap{pos: make(map[trace.ObjectID]int, hint)}
}

func (h *keyedHeap) len() int { return len(h.items) }

func (h *keyedHeap) contains(obj trace.ObjectID) bool {
	_, ok := h.pos[obj]
	return ok
}

// less orders by key, then insertion order.
func (h *keyedHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.key != b.key {
		return a.key < b.key
	}
	return a.seq < b.seq
}

func (h *keyedHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.pos[h.items[i].obj] = i
	h.pos[h.items[j].obj] = j
}

func (h *keyedHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *keyedHeap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

// push inserts obj with the given key; obj must not be present.
func (h *keyedHeap) push(obj trace.ObjectID, key float64) {
	if _, ok := h.pos[obj]; ok {
		panic("cache: keyedHeap.push: duplicate object")
	}
	h.seq++
	h.items = append(h.items, heapItem{obj: obj, key: key, seq: h.seq})
	i := len(h.items) - 1
	h.pos[obj] = i
	h.up(i)
}

// update changes obj's key (and refreshes its tie-break sequence so
// equal-key re-touches behave FIFO-by-last-touch).
func (h *keyedHeap) update(obj trace.ObjectID, key float64) {
	i, ok := h.pos[obj]
	if !ok {
		panic("cache: keyedHeap.update: object not present")
	}
	h.seq++
	old := h.items[i].key
	h.items[i].key = key
	h.items[i].seq = h.seq
	if key < old {
		h.up(i)
	} else {
		h.down(i)
	}
}

// key returns obj's current key.
func (h *keyedHeap) key(obj trace.ObjectID) (float64, bool) {
	i, ok := h.pos[obj]
	if !ok {
		return 0, false
	}
	return h.items[i].key, true
}

// popMin removes and returns the minimum-key object.
func (h *keyedHeap) popMin() (trace.ObjectID, float64) {
	if len(h.items) == 0 {
		panic("cache: keyedHeap.popMin: empty heap")
	}
	top := h.items[0]
	h.removeAt(0)
	return top.obj, top.key
}

// min peeks at the minimum without removing it.
func (h *keyedHeap) min() (trace.ObjectID, float64, bool) {
	if len(h.items) == 0 {
		return 0, 0, false
	}
	return h.items[0].obj, h.items[0].key, true
}

// remove deletes obj if present.
func (h *keyedHeap) remove(obj trace.ObjectID) bool {
	i, ok := h.pos[obj]
	if !ok {
		return false
	}
	h.removeAt(i)
	return true
}

func (h *keyedHeap) removeAt(i int) {
	last := len(h.items) - 1
	delete(h.pos, h.items[i].obj)
	if i != last {
		h.items[i] = h.items[last]
		h.pos[h.items[i].obj] = i
	}
	h.items = h.items[:last]
	if i < last {
		h.down(i)
		h.up(i)
	}
}
