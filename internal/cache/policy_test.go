package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"webcache/internal/trace"
)

func unit(obj trace.ObjectID) Entry { return Entry{Obj: obj, Size: 1, Cost: 1} }

func allPolicies(capacity uint64) []Policy {
	return []Policy{
		NewLRU(capacity),
		NewLFU(capacity),
		NewPerfectLFU(capacity),
		NewGreedyDual(capacity),
	}
}

func TestPolicyBasicCycle(t *testing.T) {
	for _, p := range allPolicies(3) {
		t.Run(p.Name(), func(t *testing.T) {
			if p.Access(1) {
				t.Fatal("hit on empty cache")
			}
			if ev := p.Add(unit(1)); len(ev) != 0 {
				t.Fatalf("eviction on non-full cache: %v", ev)
			}
			if !p.Access(1) {
				t.Fatal("miss after Add")
			}
			if !p.Contains(1) || p.Len() != 1 || p.Used() != 1 {
				t.Fatalf("state wrong: contains=%v len=%d used=%d", p.Contains(1), p.Len(), p.Used())
			}
			e, ok := p.Peek(1)
			if !ok || e.Obj != 1 {
				t.Fatalf("Peek = %+v %v", e, ok)
			}
			e, ok = p.Remove(1)
			if !ok || e.Obj != 1 || p.Len() != 0 || p.Used() != 0 {
				t.Fatalf("Remove = %+v %v len=%d", e, ok, p.Len())
			}
			if _, ok := p.Remove(1); ok {
				t.Fatal("double remove succeeded")
			}
		})
	}
}

func TestPolicyCapacityNeverExceeded(t *testing.T) {
	for _, p := range allPolicies(5) {
		t.Run(p.Name(), func(t *testing.T) {
			for i := 0; i < 100; i++ {
				p.Add(unit(trace.ObjectID(i)))
				if p.Used() > p.Capacity() {
					t.Fatalf("used %d > capacity %d", p.Used(), p.Capacity())
				}
			}
			if p.Len() != 5 {
				t.Fatalf("len = %d, want 5", p.Len())
			}
		})
	}
}

func TestPolicyOversizeEntryRejected(t *testing.T) {
	for _, p := range allPolicies(4) {
		t.Run(p.Name(), func(t *testing.T) {
			p.Add(unit(1))
			ev := p.Add(Entry{Obj: 2, Size: 10, Cost: 1})
			if len(ev) != 0 {
				t.Fatalf("oversize add evicted %v", ev)
			}
			if p.Contains(2) {
				t.Fatal("oversize entry cached")
			}
			if !p.Contains(1) {
				t.Fatal("existing entry disturbed")
			}
		})
	}
}

func TestPolicyDuplicateAddPanics(t *testing.T) {
	for _, p := range allPolicies(4) {
		t.Run(p.Name(), func(t *testing.T) {
			p.Add(unit(1))
			assertPanics(t, "dup add", func() { p.Add(unit(1)) })
		})
	}
}

func TestPolicyVariableSizes(t *testing.T) {
	for _, p := range allPolicies(10) {
		t.Run(p.Name(), func(t *testing.T) {
			p.Add(Entry{Obj: 1, Size: 4, Cost: 1})
			p.Add(Entry{Obj: 2, Size: 4, Cost: 1})
			ev := p.Add(Entry{Obj: 3, Size: 6, Cost: 1})
			if len(ev) == 0 {
				t.Fatal("no eviction when over capacity")
			}
			total := uint64(0)
			for _, e := range ev {
				total += uint64(e.Size)
			}
			if p.Used() > p.Capacity() {
				t.Fatalf("used %d > cap %d (evicted %d)", p.Used(), p.Capacity(), total)
			}
		})
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := NewLRU(3)
	c.Add(unit(1))
	c.Add(unit(2))
	c.Add(unit(3))
	c.Access(1) // 1 now MRU; LRU order: 2,3,1
	ev := c.Add(unit(4))
	if len(ev) != 1 || ev[0].Obj != 2 {
		t.Fatalf("evicted %v, want object 2", ev)
	}
	ev = c.Add(unit(5))
	if len(ev) != 1 || ev[0].Obj != 3 {
		t.Fatalf("evicted %v, want object 3", ev)
	}
}

func TestLFUEvictsLeastFrequent(t *testing.T) {
	c := NewLFU(3)
	c.Add(unit(1))
	c.Add(unit(2))
	c.Add(unit(3))
	c.Access(1)
	c.Access(1)
	c.Access(2)
	// freqs: 1->3, 2->2, 3->1
	ev := c.Add(unit(4))
	if len(ev) != 1 || ev[0].Obj != 3 {
		t.Fatalf("evicted %v, want 3", ev)
	}
	// 4 enters with freq 1 → next victim.
	ev = c.Add(unit(5))
	if len(ev) != 1 || ev[0].Obj != 4 {
		t.Fatalf("evicted %v, want 4", ev)
	}
}

func TestLFUInCacheResetsFrequency(t *testing.T) {
	c := NewLFU(2)
	c.Add(unit(1))
	c.Access(1)
	c.Access(1) // freq 3
	c.Add(unit(2))
	c.Add(unit(3)) // evicts 2 (freq 1 vs 3's... both 1; FIFO tie → 2)
	if c.Contains(2) {
		t.Fatal("2 should be evicted (tie-break FIFO)")
	}
	c.Remove(1)
	c.Add(unit(1))
	if got := c.Frequency(1); got != 1 {
		t.Fatalf("in-cache LFU frequency after re-add = %d, want 1", got)
	}
}

func TestPerfectLFUKeepsHistory(t *testing.T) {
	c := NewPerfectLFU(2)
	c.Add(unit(1))
	c.Access(1)
	c.Access(1) // count 3
	c.Remove(1)
	c.RecordMiss(1) // count 4 while absent
	c.Add(unit(1))  // count 5
	if got := c.Frequency(1); got != 5 {
		t.Fatalf("perfect LFU frequency = %d, want 5", got)
	}
	// In-cache variant ignores RecordMiss.
	ic := NewLFU(2)
	ic.RecordMiss(7)
	ic.Add(unit(7))
	if got := ic.Frequency(7); got != 1 {
		t.Fatalf("in-cache frequency after RecordMiss = %d, want 1", got)
	}
}

func TestPerfectLFUEvictionUsesHistory(t *testing.T) {
	c := NewPerfectLFU(2)
	// Warm history: object 1 referenced 5 times historically.
	for i := 0; i < 5; i++ {
		c.RecordMiss(1)
	}
	c.Add(unit(1)) // count 6
	c.Add(unit(2)) // count 1
	ev := c.Add(unit(3))
	if len(ev) != 1 || ev[0].Obj != 2 {
		t.Fatalf("evicted %v, want 2 (history protects 1)", ev)
	}
}

func TestGreedyDualEvictsMinH(t *testing.T) {
	c := NewGreedyDual(2)
	c.Add(Entry{Obj: 1, Size: 1, Cost: 10}) // H = 10
	c.Add(Entry{Obj: 2, Size: 1, Cost: 1})  // H = 1
	ev := c.Add(Entry{Obj: 3, Size: 1, Cost: 5})
	if len(ev) != 1 || ev[0].Obj != 2 {
		t.Fatalf("evicted %v, want 2 (min cost)", ev)
	}
	// L is now 1; H(3) = 1 + 5 = 6 < H(1) = 10.
	if l := c.Inflation(); l != 1 {
		t.Fatalf("inflation = %g, want 1", l)
	}
	ev = c.Add(Entry{Obj: 4, Size: 1, Cost: 20})
	if len(ev) != 1 || ev[0].Obj != 3 {
		t.Fatalf("evicted %v, want 3", ev)
	}
}

func TestGreedyDualHitRefreshesH(t *testing.T) {
	c := NewGreedyDual(2)
	c.Add(Entry{Obj: 1, Size: 1, Cost: 2})
	c.Add(Entry{Obj: 2, Size: 1, Cost: 3})
	c.Add(Entry{Obj: 3, Size: 1, Cost: 2}) // evicts 1 (H=2), L=2, H(3)=4
	if c.Contains(1) {
		t.Fatal("1 not evicted")
	}
	c.Access(2) // H(2) = L + 3 = 5
	h2, _ := c.HValue(2)
	h3, _ := c.HValue(3)
	if h2 != 5 || h3 != 4 {
		t.Fatalf("H values = %g, %g; want 5, 4", h2, h3)
	}
	ev := c.Add(Entry{Obj: 4, Size: 1, Cost: 100})
	if len(ev) != 1 || ev[0].Obj != 3 {
		t.Fatalf("evicted %v, want 3 (stale H)", ev)
	}
}

func TestGreedyDualSizeAware(t *testing.T) {
	c := NewGreedyDual(10)
	c.Add(Entry{Obj: 1, Size: 5, Cost: 5})  // H = 1
	c.Add(Entry{Obj: 2, Size: 1, Cost: 10}) // H = 10
	ev := c.Add(Entry{Obj: 3, Size: 5, Cost: 100})
	// Needs 5 units: evicting 1 (H=1, frees 5) suffices.
	if len(ev) != 1 || ev[0].Obj != 1 {
		t.Fatalf("evicted %v, want [1]", ev)
	}
}

func TestGreedyDualInflationMonotone(t *testing.T) {
	c := NewGreedyDual(4)
	rng := rand.New(rand.NewSource(1))
	last := 0.0
	for i := 0; i < 1000; i++ {
		obj := trace.ObjectID(rng.Intn(50))
		if !c.Access(obj) {
			c.Add(Entry{Obj: obj, Size: 1, Cost: 1 + rng.Float64()*9})
		}
		if l := c.Inflation(); l < last {
			t.Fatalf("inflation decreased: %g -> %g", last, l)
		} else {
			last = l
		}
	}
}

// Property: under random unit-size workloads every policy (a) never
// exceeds capacity, (b) reports Len == number of distinct cached
// objects, and (c) evicted+cached object sets partition the inserted
// set.
func TestPropPolicyInvariants(t *testing.T) {
	mk := map[string]func(uint64) Policy{
		"lru":         func(c uint64) Policy { return NewLRU(c) },
		"lfu":         func(c uint64) Policy { return NewLFU(c) },
		"lfu-perfect": func(c uint64) Policy { return NewPerfectLFU(c) },
		"greedy-dual": func(c uint64) Policy { return NewGreedyDual(c) },
	}
	for name, ctor := range mk {
		f := func(seed int64, n uint8) bool {
			rng := rand.New(rand.NewSource(seed))
			capacity := uint64(rng.Intn(8) + 1)
			p := ctor(capacity)
			inCache := map[trace.ObjectID]bool{}
			for i := 0; i < int(n); i++ {
				obj := trace.ObjectID(rng.Intn(20))
				if p.Access(obj) {
					if !inCache[obj] {
						return false // hit on uncached object
					}
					continue
				}
				if inCache[obj] {
					return false // miss on cached object
				}
				for _, ev := range p.Add(Entry{Obj: obj, Size: 1, Cost: 1 + rng.Float64()}) {
					if !inCache[ev.Obj] {
						return false // evicted something not cached
					}
					delete(inCache, ev.Obj)
				}
				inCache[obj] = true
				if p.Used() > p.Capacity() || p.Len() != len(inCache) {
					return false
				}
			}
			for o := range inCache {
				if !p.Contains(o) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// Greedy-dual should beat LRU and LFU on a mixed-cost workload where
// popular objects are expensive — the Korupolu & Dahlin observation
// that motivates Hier-GD (§3).
func TestGreedyDualBeatsLRUOnMixedCosts(t *testing.T) {
	run := func(p Policy) float64 {
		rng := rand.New(rand.NewSource(42))
		totalCost := 0.0
		for i := 0; i < 20000; i++ {
			var obj trace.ObjectID
			var cost float64
			if rng.Float64() < 0.5 {
				obj = trace.ObjectID(rng.Intn(30)) // popular, expensive
				cost = 10
			} else {
				obj = trace.ObjectID(30 + rng.Intn(300)) // unpopular, cheap
				cost = 1
			}
			if !p.Access(obj) {
				totalCost += cost
				p.Add(Entry{Obj: obj, Size: 1, Cost: cost})
			}
		}
		return totalCost
	}
	gd := run(NewGreedyDual(40))
	lru := run(NewLRU(40))
	if gd >= lru {
		t.Errorf("greedy-dual cost %g >= LRU cost %g", gd, lru)
	}
}
