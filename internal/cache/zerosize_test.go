package cache

import (
	"math"
	"testing"

	"webcache/internal/trace"
)

// A zero-size entry used to reach hvalue's Cost/Size division and pin
// the object with an +Inf H value; the shared add-validation path now
// rejects it for every policy.
func TestAddZeroSizeRejected(t *testing.T) {
	policies := []Policy{
		NewGreedyDual(10),
		NewGDSF(10),
		NewLRU(10),
		NewLFU(10),
		NewPerfectLFU(10),
	}
	for _, p := range policies {
		if ev := p.Add(Entry{Obj: 1, Size: 0, Cost: 1}); len(ev) != 0 {
			t.Errorf("%s: zero-size Add evicted %v", p.Name(), ev)
		}
		if p.Contains(1) {
			t.Errorf("%s: zero-size entry was cached", p.Name())
		}
		if p.Len() != 0 || p.Used() != 0 {
			t.Errorf("%s: len=%d used=%d after rejected add", p.Name(), p.Len(), p.Used())
		}
	}
}

// Even if a zero-size object slipped into a greedy-dual heap it would
// never be evictable; pin that the rejection keeps all H values finite
// while the cache churns.
func TestGreedyDualHValuesStayFinite(t *testing.T) {
	c := NewGreedyDual(4)
	c.Add(Entry{Obj: 1, Size: 0, Cost: 5}) // rejected
	for obj := 2; obj < 20; obj++ {
		c.Add(Entry{Obj: trace.ObjectID(obj), Size: 1, Cost: float64(obj)})
		for _, o := range c.Objects() {
			h, ok := c.HValue(o)
			if !ok {
				t.Fatalf("object %d missing from heap", o)
			}
			if math.IsInf(h, 0) || math.IsNaN(h) {
				t.Fatalf("object %d has non-finite H %v", o, h)
			}
		}
	}
	if c.Contains(1) {
		t.Error("zero-size object resident after churn")
	}
}
