package cache

import "webcache/internal/trace"

// GreedyDual implements the greedy-dual replacement algorithm (Young's
// on-line file caching algorithm, SODA 1998) in its efficient
// inflation-value form, generalized to sizes as GreedyDual-Size (Cao &
// Irani): each cached object carries a value
//
//	H(o) = L + Cost(o)/Size(o)
//
// where L is a monotonically non-decreasing "inflation" set to the H
// value of the last eviction victim.  On a hit, H is refreshed with the
// current L.  Eviction removes the minimum-H object.
//
// Hier-GD (paper §3) runs this algorithm at the proxy and at every
// client cache: objects the proxy evicts are "passed down" into the P2P
// client cache, where the receiving client cache enforces greedy-dual
// again.  Because cost is the fetch latency, greedy-dual implicitly
// coordinates caches: cheap-to-refetch objects (a cooperating proxy
// already has them) are evicted before expensive ones (server-only),
// which is the "implicit cache coordination" Korupolu & Dahlin
// observed.
type GreedyDual struct {
	capacity  uint64
	used      uint64
	inflation float64
	entries   map[trace.ObjectID]Entry
	heap      *keyedHeap
	// scratch backs the slice Add returns; reused across calls so the
	// steady-state eviction path never allocates (see Policy.Add).
	scratch []Entry
}

// NewGreedyDual returns a greedy-dual cache of the given capacity.
func NewGreedyDual(capacity uint64) *GreedyDual {
	return &GreedyDual{
		capacity: capacity,
		entries:  make(map[trace.ObjectID]Entry),
		heap:     newKeyedHeap(64),
	}
}

// Name implements Policy.
func (c *GreedyDual) Name() string { return "greedy-dual" }

func (c *GreedyDual) hvalue(e Entry) float64 {
	return c.inflation + e.Cost/float64(e.Size)
}

// Access implements Policy.  A hit restores the object's H value to
// L + Cost/Size with the current inflation.
func (c *GreedyDual) Access(obj trace.ObjectID) bool {
	e, ok := c.entries[obj]
	if !ok {
		return false
	}
	c.heap.update(obj, c.hvalue(e))
	return true
}

// Add implements Policy.
func (c *GreedyDual) Add(e Entry) []Entry {
	_, present := c.entries[e.Obj]
	if err := checkAddable(c.Name(), e, present, c.capacity); err != nil {
		return nil
	}
	c.scratch = evictFor(e.Size, &c.used, c.capacity, func() Entry {
		obj, h := c.heap.popMin()
		// The inflation rises to the victim's H value; every later
		// insertion and refresh builds on it.
		c.inflation = h
		victim := c.entries[obj]
		delete(c.entries, obj)
		return victim
	}, c.scratch[:0])
	evicted := c.scratch
	c.entries[e.Obj] = e
	c.heap.push(e.Obj, c.hvalue(e))
	c.used += uint64(e.Size)
	return evicted
}

// Remove implements Policy.
func (c *GreedyDual) Remove(obj trace.ObjectID) (Entry, bool) {
	e, ok := c.entries[obj]
	if !ok {
		return Entry{}, false
	}
	c.heap.remove(obj)
	delete(c.entries, obj)
	c.used -= uint64(e.Size)
	return e, true
}

// Contains implements Policy.
func (c *GreedyDual) Contains(obj trace.ObjectID) bool {
	_, ok := c.entries[obj]
	return ok
}

// Peek implements Policy.
func (c *GreedyDual) Peek(obj trace.ObjectID) (Entry, bool) {
	e, ok := c.entries[obj]
	return e, ok
}

// HValue exposes the current H value of a cached object for tests and
// the Hier-GD pass-down logic.
func (c *GreedyDual) HValue(obj trace.ObjectID) (float64, bool) {
	return c.heap.key(obj)
}

// Inflation exposes the current L value.
func (c *GreedyDual) Inflation() float64 { return c.inflation }

// Len implements Policy.
func (c *GreedyDual) Len() int { return len(c.entries) }

// Used implements Policy.
func (c *GreedyDual) Used() uint64 { return c.used }

// Capacity implements Policy.
func (c *GreedyDual) Capacity() uint64 { return c.capacity }

var _ Policy = (*GreedyDual)(nil)

// Objects lists the cached object ids in ascending order.
func (c *GreedyDual) Objects() []trace.ObjectID { return sortedObjects(c.entries) }
