package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"webcache/internal/trace"
)

func seqOf(vals ...trace.ObjectID) []trace.ObjectID { return vals }

func TestBeladyClassicSequence(t *testing.T) {
	// The textbook paging example: capacity 3, demand-paging OPT takes
	// 9 faults.  A web cache may *bypass* (serving without caching),
	// which saves one more: our caching-optional MIN takes 8.
	seq := seqOf(7, 0, 1, 2, 0, 3, 0, 4, 2, 3, 0, 3, 2, 1, 2, 0, 1, 7, 0, 1)
	oracle := NewBelady(3, seq)
	misses := ReplaySingleCache(oracle, seq)
	if misses != 8 {
		t.Fatalf("OPT misses = %d, want 8 (bypass-enabled MIN)", misses)
	}
}

func TestBeladyBypass(t *testing.T) {
	// Capacity 1: A B A — caching B would evict A before its re-use;
	// MIN bypasses B and takes only B's compulsory miss.
	seq := seqOf(1, 2, 1)
	oracle := NewBelady(1, seq)
	misses := ReplaySingleCache(oracle, seq)
	if misses != 2 {
		t.Fatalf("misses = %d, want 2 (compulsory only)", misses)
	}
}

func TestBeladyNeverUsedEvictedFirst(t *testing.T) {
	seq := seqOf(1, 2, 3, 1, 2)
	oracle := NewBelady(2, seq)
	misses := ReplaySingleCache(oracle, seq)
	// 1,2 compulsory; 3 bypassed (never re-used while 1,2 are); 1,2 hit.
	if misses != 3 {
		t.Fatalf("misses = %d, want 3", misses)
	}
}

// Property: the clairvoyant policy never takes more misses than LRU,
// LFU, or greedy-dual on any random unit-size sequence (Belady's
// optimality theorem, checked empirically).
func TestPropBeladyOptimal(t *testing.T) {
	f := func(seed int64, n uint8, capRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := uint64(capRaw%8) + 2
		seq := make([]trace.ObjectID, int(n)+20)
		for i := range seq {
			seq[i] = trace.ObjectID(rng.Intn(20))
		}
		opt := ReplaySingleCache(NewBelady(capacity, seq), seq)
		for _, p := range []Policy{
			NewLRU(capacity),
			NewLFU(capacity),
			NewPerfectLFU(capacity),
			NewGreedyDual(capacity),
			NewGDSF(capacity),
		} {
			if online := ReplaySingleCache(p, seq); online < opt {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBeladyPolicyInterface(t *testing.T) {
	seq := seqOf(1, 2, 3, 1)
	c := NewBelady(2, seq)
	c.Add(Entry{Obj: 1, Size: 1, Cost: 1})
	if !c.Contains(1) || c.Len() != 1 || c.Used() != 1 || c.Capacity() != 2 {
		t.Fatal("basic state wrong")
	}
	if _, ok := c.Peek(1); !ok {
		t.Error("peek failed")
	}
	if got := c.Objects(); len(got) != 1 || got[0] != 1 {
		t.Errorf("objects = %v", got)
	}
	if _, ok := c.Remove(1); !ok || c.Len() != 0 {
		t.Error("remove failed")
	}
	if c.Name() != "belady" {
		t.Error("name wrong")
	}
	c.Tick() // must not panic
}

// The gap between greedy-dual and the oracle on a realistic skewed
// workload stays moderate — the headroom measurement the bench
// harness reports.
func TestGreedyDualWithinReasonOfOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	seq := make([]trace.ObjectID, 30000)
	for i := range seq {
		// Zipf-ish via multiplying uniforms.
		seq[i] = trace.ObjectID(float64(500) * rng.Float64() * rng.Float64())
	}
	const capacity = 50
	opt := ReplaySingleCache(NewBelady(capacity, seq), seq)
	gd := ReplaySingleCache(NewGreedyDual(capacity), seq)
	if gd < opt {
		t.Fatalf("online beat the oracle: %d < %d", gd, opt)
	}
	if float64(gd) > 2.5*float64(opt) {
		t.Errorf("greedy-dual misses %d vs optimal %d: gap ratio %.2f implausibly large",
			gd, opt, float64(gd)/float64(opt))
	}
}
