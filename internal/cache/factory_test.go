package cache

import (
	"testing"

	"webcache/internal/trace"
)

func TestFactoryNewInstantiatesEveryRegisteredPolicy(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := New(name, 100)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p.Capacity() != 100 {
			t.Fatalf("New(%q).Capacity() = %d, want 100", name, p.Capacity())
		}
		if p.Access(1) {
			t.Fatalf("New(%q): fresh policy reports a hit", name)
		}
		p.Add(Entry{Obj: 1, Size: 10, Cost: 1})
		if !p.Access(1) {
			t.Fatalf("New(%q): added object not accessible", name)
		}
	}
}

func TestFactoryDefaultAndUnknown(t *testing.T) {
	p, err := New("", 50)
	if err != nil {
		t.Fatalf("New(\"\"): %v", err)
	}
	if _, ok := p.(*GreedyDual); !ok {
		t.Fatalf("default policy is %T, want *GreedyDual", p)
	}
	if _, err := New("no-such-policy", 50); err == nil {
		t.Fatal("New(no-such-policy) did not fail")
	}
}

func TestFactoryRegister(t *testing.T) {
	if err := Register("", nil); err == nil {
		t.Fatal("Register with empty name/nil factory did not fail")
	}
	if err := Register("factory-test-lru", func(c uint64) Policy { return NewLRU(c) }); err != nil {
		t.Fatalf("Register: %v", err)
	}
	p, err := New("factory-test-lru", 10)
	if err != nil {
		t.Fatalf("New(registered): %v", err)
	}
	p.Add(Entry{Obj: trace.ObjectID(7), Size: 1, Cost: 1})
	if !p.Contains(7) {
		t.Fatal("registered factory policy does not work")
	}
}
