package cache

import "webcache/internal/trace"

// LFU is a least-frequently-used cache.  The paper's NC, SC, NC-EC and
// SC-EC schemes "implement the LFU replacement policy" (§5.1).
//
// Two frequency-bookkeeping variants are provided:
//
//   - in-cache LFU (Perfect=false): an object's count restarts at 1
//     each time it (re-)enters the cache;
//   - perfect LFU (Perfect=true): counts persist across evictions, the
//     classic "perfect frequency knowledge" variant, which is the one
//     the paper's upper-bound framing implies.
//
// Eviction takes the minimum-frequency object, breaking ties by least
// recent touch.
type LFU struct {
	capacity uint64
	used     uint64
	perfect  bool
	entries  map[trace.ObjectID]Entry
	heap     *keyedHeap
	// history holds persistent counts for the perfect variant,
	// including objects not currently cached.
	history map[trace.ObjectID]uint64
	// scratch backs the slice Add returns; see Policy.Add.
	scratch []Entry
}

// NewLFU returns an in-cache LFU cache.
func NewLFU(capacity uint64) *LFU { return newLFU(capacity, false) }

// NewPerfectLFU returns a perfect-frequency LFU cache.
func NewPerfectLFU(capacity uint64) *LFU { return newLFU(capacity, true) }

// NewPerfectLFUShared returns a perfect-frequency LFU cache whose
// frequency history is the caller-provided map.  Passing the same map
// to several caches makes them agree on object frequencies — the EC
// schemes use this so the proxy tier and client tier of a unified
// cache rank objects consistently.
func NewPerfectLFUShared(capacity uint64, history map[trace.ObjectID]uint64) *LFU {
	c := newLFU(capacity, true)
	c.history = history
	return c
}

func newLFU(capacity uint64, perfect bool) *LFU {
	c := &LFU{
		capacity: capacity,
		perfect:  perfect,
		entries:  make(map[trace.ObjectID]Entry),
		heap:     newKeyedHeap(64),
	}
	if perfect {
		c.history = make(map[trace.ObjectID]uint64)
	}
	return c
}

// Name implements Policy.
func (c *LFU) Name() string {
	if c.perfect {
		return "lfu-perfect"
	}
	return "lfu"
}

// RecordMiss lets the perfect variant count references to objects that
// are not cached (so their history is warm when they are next added).
// It is a no-op for in-cache LFU.
func (c *LFU) RecordMiss(obj trace.ObjectID) {
	if c.perfect {
		c.history[obj]++
	}
}

// Access implements Policy.
func (c *LFU) Access(obj trace.ObjectID) bool {
	if _, ok := c.entries[obj]; !ok {
		return false
	}
	var f float64
	if c.perfect {
		c.history[obj]++
		f = float64(c.history[obj])
	} else {
		cur, _ := c.heap.key(obj)
		f = cur + 1
	}
	c.heap.update(obj, f)
	return true
}

// Add implements Policy.
func (c *LFU) Add(e Entry) []Entry {
	_, present := c.entries[e.Obj]
	if err := checkAddable(c.Name(), e, present, c.capacity); err != nil {
		return nil
	}
	c.scratch = evictFor(e.Size, &c.used, c.capacity, func() Entry {
		obj, _ := c.heap.popMin()
		victim := c.entries[obj]
		delete(c.entries, obj)
		return victim
	}, c.scratch[:0])
	evicted := c.scratch
	c.entries[e.Obj] = e
	f := 1.0
	if c.perfect {
		c.history[e.Obj]++
		f = float64(c.history[e.Obj])
	}
	c.heap.push(e.Obj, f)
	c.used += uint64(e.Size)
	return evicted
}

// Remove implements Policy.
func (c *LFU) Remove(obj trace.ObjectID) (Entry, bool) {
	e, ok := c.entries[obj]
	if !ok {
		return Entry{}, false
	}
	c.heap.remove(obj)
	delete(c.entries, obj)
	c.used -= uint64(e.Size)
	return e, true
}

// Contains implements Policy.
func (c *LFU) Contains(obj trace.ObjectID) bool {
	_, ok := c.entries[obj]
	return ok
}

// Peek implements Policy.
func (c *LFU) Peek(obj trace.ObjectID) (Entry, bool) {
	e, ok := c.entries[obj]
	return e, ok
}

// Frequency reports the policy's current frequency for obj (0 if
// unknown), exposed for tests and metrics.
func (c *LFU) Frequency(obj trace.ObjectID) uint64 {
	if c.perfect {
		return c.history[obj]
	}
	if f, ok := c.heap.key(obj); ok {
		return uint64(f)
	}
	return 0
}

// Len implements Policy.
func (c *LFU) Len() int { return len(c.entries) }

// Used implements Policy.
func (c *LFU) Used() uint64 { return c.used }

// Capacity implements Policy.
func (c *LFU) Capacity() uint64 { return c.capacity }

var _ Policy = (*LFU)(nil)

// Objects lists the cached object ids in ascending order.
func (c *LFU) Objects() []trace.ObjectID { return sortedObjects(c.entries) }
