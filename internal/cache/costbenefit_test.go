package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"webcache/internal/trace"
)

// twoProxyInput builds a symmetric two-proxy problem with the given
// per-proxy frequencies and one proxy tier each.
func twoProxyInput(freq []float64, capacity int, coop bool) PlacementInput {
	f2 := make([]float64, len(freq))
	copy(f2, freq)
	return PlacementInput{
		Freq: [][]float64{freq, f2},
		Tiers: []Tier{
			{Proxy: 0, Capacity: capacity, HitLatency: 0.05},
			{Proxy: 1, Capacity: capacity, HitLatency: 0.05},
		},
		ServerLatency: 1.0,
		RemoteLatency: 0.1,
		Cooperative:   coop,
	}
}

func TestPlacementRespectsCapacity(t *testing.T) {
	in := twoProxyInput([]float64{10, 9, 8, 7, 6, 5, 4, 3, 2, 1}, 3, true)
	pl, err := ComputePlacement(in)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, len(in.Tiers))
	for p := range pl.ByProxy {
		for _, tier := range pl.ByProxy[p] {
			counts[tier]++
		}
	}
	for i, c := range counts {
		if c > in.Tiers[i].Capacity {
			t.Errorf("tier %d holds %d > capacity %d", i, c, in.Tiers[i].Capacity)
		}
	}
}

func TestPlacementPrefersPopularObjects(t *testing.T) {
	in := twoProxyInput([]float64{100, 90, 80, 1, 1, 1}, 2, true)
	pl, err := ComputePlacement(in)
	if err != nil {
		t.Fatal(err)
	}
	// The three popular objects must be placed somewhere before any
	// unpopular one.
	for o := trace.ObjectID(0); o < 3; o++ {
		if !pl.Anywhere(o) {
			t.Errorf("popular object %d not placed", o)
		}
	}
}

func TestPlacementCooperationAvoidsDuplication(t *testing.T) {
	// With cooperation and tight capacity, the cluster should cover
	// more distinct objects than 2 independent caches would (which
	// would both cache the same top objects).
	freq := []float64{100, 99, 98, 97, 96, 95, 94, 93}
	coop, err := ComputePlacement(twoProxyInput(freq, 4, true))
	if err != nil {
		t.Fatal(err)
	}
	indep, err := ComputePlacement(twoProxyInput(freq, 4, false))
	if err != nil {
		t.Fatal(err)
	}
	distinct := func(pl *Placement) int {
		s := map[trace.ObjectID]bool{}
		for p := range pl.ByProxy {
			for o := range pl.ByProxy[p] {
				s[o] = true
			}
		}
		return len(s)
	}
	dc, di := distinct(coop), distinct(indep)
	if dc <= di {
		t.Errorf("cooperative distinct coverage %d <= independent %d", dc, di)
	}
	if di != 4 {
		t.Errorf("independent proxies should both cache the top 4, got %d distinct", di)
	}
	if dc != 8 {
		t.Errorf("cooperative cluster should cover all 8, got %d", dc)
	}
}

func TestPlacementDuplicatesWhenWorthIt(t *testing.T) {
	// A single extremely hot object and loose capacity: both proxies
	// should hold their own copy (Tc > Tl makes a local copy worth a
	// slot once coverage no longer suffers).
	freq := []float64{1000, 1, 1}
	pl, err := ComputePlacement(twoProxyInput(freq, 3, true))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := pl.HasCopy(0, 0); !ok {
		t.Error("proxy 0 lacks copy of hot object")
	}
	if _, ok := pl.HasCopy(1, 0); !ok {
		t.Error("proxy 1 lacks copy of hot object")
	}
}

func TestPlacementTwoTiersPutsHotObjectsInFastTier(t *testing.T) {
	in := PlacementInput{
		Freq: [][]float64{{100, 50, 10, 5}},
		Tiers: []Tier{
			{Proxy: 0, Capacity: 2, HitLatency: 0.05}, // proxy tier (Tl)
			{Proxy: 0, Capacity: 2, HitLatency: 0.07}, // p2p tier (Tp2p)
		},
		ServerLatency: 1.0,
		RemoteLatency: 0.1,
		Cooperative:   false,
	}
	pl, err := ComputePlacement(in)
	if err != nil {
		t.Fatal(err)
	}
	for o := trace.ObjectID(0); o < 2; o++ {
		if tier, ok := pl.ByProxy[0][o]; !ok || tier != 0 {
			t.Errorf("hot object %d in tier %d, want proxy tier 0", o, tier)
		}
	}
	for o := trace.ObjectID(2); o < 4; o++ {
		if tier, ok := pl.ByProxy[0][o]; !ok || tier != 1 {
			t.Errorf("warm object %d in tier %d, want p2p tier 1", o, tier)
		}
	}
}

func TestPlacementZeroBenefitObjectsUnplaced(t *testing.T) {
	in := twoProxyInput([]float64{10, 0, 0, 0}, 3, true)
	pl, err := ComputePlacement(in)
	if err != nil {
		t.Fatal(err)
	}
	for o := trace.ObjectID(1); o < 4; o++ {
		if pl.Anywhere(o) {
			t.Errorf("zero-frequency object %d placed", o)
		}
	}
}

func TestPlacementInputValidation(t *testing.T) {
	base := twoProxyInput([]float64{1}, 1, true)
	bad := base
	bad.Freq = nil
	if _, err := ComputePlacement(bad); err == nil {
		t.Error("no proxies accepted")
	}
	bad = base
	bad.Freq = [][]float64{{1}, {1, 2}}
	if _, err := ComputePlacement(bad); err == nil {
		t.Error("ragged freq accepted")
	}
	bad = base
	bad.Tiers = []Tier{{Proxy: 5, Capacity: 1, HitLatency: 0.05}}
	if _, err := ComputePlacement(bad); err == nil {
		t.Error("bad tier proxy accepted")
	}
	bad = base
	bad.ServerLatency = 0
	if _, err := ComputePlacement(bad); err == nil {
		t.Error("zero server latency accepted")
	}
	bad = base
	bad.Tiers = []Tier{{Proxy: 0, Capacity: -1, HitLatency: 0.05}}
	if _, err := ComputePlacement(bad); err == nil {
		t.Error("negative capacity accepted")
	}
}

// evaluate computes the total latency of a placement under the
// perfect-frequency model, for comparing greedy to brute force.
func evaluate(in PlacementInput, pl *Placement) float64 {
	numObjects := len(in.Freq[0])
	total := 0.0
	for p := range in.Freq {
		for o := 0; o < numObjects; o++ {
			lat := in.ServerLatency
			if l, ok := pl.HasCopy(p, trace.ObjectID(o)); ok {
				lat = l
			} else if in.Cooperative && pl.Anywhere(trace.ObjectID(o)) && in.RemoteLatency < lat {
				lat = in.RemoteLatency
			}
			total += in.Freq[p][o] * lat
		}
	}
	return total
}

// bruteForce enumerates all placements for tiny instances (2 proxies,
// 1 tier each, <=4 objects, capacity <=2) and returns the optimum.
func bruteForce(in PlacementInput) float64 {
	numObjects := len(in.Freq[0])
	best := -1.0
	capacity0 := in.Tiers[0].Capacity
	capacity1 := in.Tiers[1].Capacity
	// Each proxy picks a subset of objects within capacity.
	for m0 := 0; m0 < 1<<numObjects; m0++ {
		if popcount(m0) > capacity0 {
			continue
		}
		for m1 := 0; m1 < 1<<numObjects; m1++ {
			if popcount(m1) > capacity1 {
				continue
			}
			pl := &Placement{
				ByProxy: []map[trace.ObjectID]int{{}, {}},
				Tiers:   in.Tiers,
			}
			for o := 0; o < numObjects; o++ {
				if m0&(1<<o) != 0 {
					pl.ByProxy[0][trace.ObjectID(o)] = 0
				}
				if m1&(1<<o) != 0 {
					pl.ByProxy[1][trace.ObjectID(o)] = 1
				}
			}
			v := evaluate(in, pl)
			if best < 0 || v < best {
				best = v
			}
		}
	}
	return best
}

func popcount(x int) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// Property: greedy placement achieves at least the classic (1-1/e)
// submodular-greedy guarantee of the optimal latency *benefit*
// (baseline minus achieved latency) on tiny brute-forceable instances.
// In practice it is nearly optimal; the bound here is the proven floor.
func TestPropPlacementNearOptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numObjects := 3 + rng.Intn(2)
		freq0 := make([]float64, numObjects)
		freq1 := make([]float64, numObjects)
		for o := range freq0 {
			freq0[o] = float64(rng.Intn(50))
			freq1[o] = float64(rng.Intn(50))
		}
		in := PlacementInput{
			Freq: [][]float64{freq0, freq1},
			Tiers: []Tier{
				{Proxy: 0, Capacity: 1 + rng.Intn(2), HitLatency: 0.05},
				{Proxy: 1, Capacity: 1 + rng.Intn(2), HitLatency: 0.05},
			},
			ServerLatency: 1.0,
			RemoteLatency: 0.1,
			Cooperative:   true,
		}
		pl, err := ComputePlacement(in)
		if err != nil {
			return false
		}
		baseline := 0.0
		for p := range in.Freq {
			for _, fr := range in.Freq[p] {
				baseline += fr * in.ServerLatency
			}
		}
		greedyBenefit := baseline - evaluate(in, pl)
		optBenefit := baseline - bruteForce(in)
		if optBenefit <= 0 {
			return greedyBenefit >= -1e-9
		}
		return greedyBenefit >= 0.63*optBenefit-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
