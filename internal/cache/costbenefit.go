package cache

import (
	"fmt"

	"webcache/internal/trace"
)

// This file implements the cost-benefit replacement used by the FC and
// FC-EC schemes (paper §2, §5.1): "based on the assumption of the
// perfect frequency knowledge to each object, the cost-benefit
// replacement algorithm minimizes the aggregate average latency of all
// the clients in the proxy cluster but at the expense of computational
// complexity."
//
// With perfect frequencies the problem is a coordinated *placement*:
// decide which proxy tiers hold a copy of which objects so that total
// access latency over the whole trace is minimized.  We solve it with
// the standard greedy marginal-benefit algorithm (cf. Korupolu &
// Dahlin; Lee et al.): repeatedly place the (object, tier) copy with
// the highest marginal latency saving until every tier is full or no
// placement helps.  Marginal benefits only decrease as copies appear
// (the benefit function is submodular), so a lazy priority queue yields
// the exact greedy solution without re-scanning.
//
// Tiers generalize proxies so FC-EC falls out for free: each proxy has
// a proxy tier at latency Tl and (for FC-EC) a P2P client-cache tier at
// latency Tp2p.

// Tier is one placement target: a capacity at a proxy with a hit
// latency for that proxy's local clients.
type Tier struct {
	// Proxy is the index of the owning proxy.
	Proxy int
	// Capacity is how many unit-size objects the tier holds.
	Capacity int
	// HitLatency is the latency the proxy's local clients pay for a
	// hit in this tier (Tl for the proxy cache, Tp2p for the P2P tier).
	HitLatency float64
}

// PlacementInput bundles the cost-benefit problem.
type PlacementInput struct {
	// Freq[p][o] is the reference count of object o by clients of
	// proxy p (perfect knowledge).
	Freq [][]float64
	// Tiers lists all placement targets across all proxies.
	Tiers []Tier
	// ServerLatency is the fetch latency from the origin server (Ts).
	ServerLatency float64
	// RemoteLatency is the fetch latency from a cooperating proxy
	// (Tc); used when another proxy holds the only copy.
	RemoteLatency float64
	// Cooperative controls whether proxies serve each other (true for
	// FC/FC-EC).  When false the placement degenerates to independent
	// per-proxy optimisation.
	Cooperative bool
	// Sizes gives per-object sizes in cache units (nil = unit sizes).
	// Tier capacities are in the same units; the greedy then ranks
	// candidates by benefit *density* (benefit per unit), the standard
	// variable-size generalization.
	Sizes []uint32
}

// objectSize resolves an object's size (1 when Sizes is nil).
func (in *PlacementInput) objectSize(o int) int {
	if in.Sizes == nil {
		return 1
	}
	return int(in.Sizes[o])
}

// Placement is the result: for each proxy, object -> tier index (into
// PlacementInput.Tiers).
type Placement struct {
	// ByProxy[p][o] gives the tier holding proxy p's copy of o.
	ByProxy []map[trace.ObjectID]int
	// Tiers echoes the input tiers for latency lookup during replay.
	Tiers []Tier
}

// HasCopy reports whether proxy p holds o, and at what hit latency.
func (pl *Placement) HasCopy(p int, o trace.ObjectID) (float64, bool) {
	t, ok := pl.ByProxy[p][o]
	if !ok {
		return 0, false
	}
	return pl.Tiers[t].HitLatency, true
}

// Anywhere reports whether any proxy holds o.
func (pl *Placement) Anywhere(o trace.ObjectID) bool {
	for _, m := range pl.ByProxy {
		if _, ok := m[o]; ok {
			return true
		}
	}
	return false
}

// candidate is one potential (object, tier) placement in the lazy queue.
type candidate struct {
	obj     trace.ObjectID
	tier    int
	benefit float64
}

// candidateHeap is a max-heap on benefit (tie-break object id then tier
// for determinism).
type candidateHeap []candidate

func (h candidateHeap) less(i, j int) bool {
	if h[i].benefit != h[j].benefit {
		return h[i].benefit > h[j].benefit
	}
	if h[i].obj != h[j].obj {
		return h[i].obj < h[j].obj
	}
	return h[i].tier < h[j].tier
}

func (h candidateHeap) swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *candidateHeap) push(c candidate) {
	*h = append(*h, c)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *candidateHeap) pop() candidate {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && (*h).less(l, best) {
			best = l
		}
		if r < n && (*h).less(r, best) {
			best = r
		}
		if best == i {
			break
		}
		(*h).swap(i, best)
		i = best
	}
	return top
}

// ComputePlacement runs the greedy cost-benefit placement.
func ComputePlacement(in PlacementInput) (*Placement, error) {
	numProxies := len(in.Freq)
	if numProxies == 0 {
		return nil, fmt.Errorf("cache: placement needs at least one proxy")
	}
	numObjects := len(in.Freq[0])
	for p, f := range in.Freq {
		if len(f) != numObjects {
			return nil, fmt.Errorf("cache: freq row %d has %d objects, want %d", p, len(f), numObjects)
		}
	}
	for i, t := range in.Tiers {
		if t.Proxy < 0 || t.Proxy >= numProxies {
			return nil, fmt.Errorf("cache: tier %d references proxy %d of %d", i, t.Proxy, numProxies)
		}
		if t.Capacity < 0 || t.HitLatency < 0 {
			return nil, fmt.Errorf("cache: tier %d has negative capacity or latency", i)
		}
	}
	if in.Sizes != nil && len(in.Sizes) != numObjects {
		return nil, fmt.Errorf("cache: %d sizes for %d objects", len(in.Sizes), numObjects)
	}
	if in.ServerLatency <= 0 || in.RemoteLatency <= 0 {
		return nil, fmt.Errorf("cache: latencies must be positive")
	}

	pl := &Placement{
		ByProxy: make([]map[trace.ObjectID]int, numProxies),
		Tiers:   in.Tiers,
	}
	for p := range pl.ByProxy {
		pl.ByProxy[p] = make(map[trace.ObjectID]int)
	}

	// copies[o] counts placed copies of o cluster-wide; localLat[p*N+o]
	// is the latency proxy p's clients currently pay for o.
	copies := make([]int, numObjects)
	localLat := make([]float64, numProxies*numObjects)
	baseRemote := func(o int) float64 {
		if in.Cooperative && copies[o] > 0 {
			return in.RemoteLatency
		}
		return in.ServerLatency
	}
	for p := 0; p < numProxies; p++ {
		for o := 0; o < numObjects; o++ {
			localLat[p*numObjects+o] = in.ServerLatency
		}
	}

	// marginalBenefit of placing o in tier t right now.
	marginalBenefit := func(o int, t int) float64 {
		tier := in.Tiers[t]
		p := tier.Proxy
		cur := localLat[p*numObjects+o]
		if base := baseRemote(o); base < cur {
			cur = base
		}
		b := 0.0
		if tier.HitLatency < cur {
			b += in.Freq[p][o] * (cur - tier.HitLatency)
		}
		// First copy in the cluster lets every other proxy's clients
		// fetch at Tc instead of Ts (cooperative sharing).
		if in.Cooperative && copies[o] == 0 && in.RemoteLatency < in.ServerLatency {
			for q := 0; q < numProxies; q++ {
				if q == p {
					continue
				}
				if cur := localLat[q*numObjects+o]; in.RemoteLatency < cur {
					b += in.Freq[q][o] * (cur - in.RemoteLatency)
				}
			}
		}
		return b
	}

	// Candidates rank by benefit *density* (benefit per cache unit) so
	// variable-size placements prefer compact value; for unit sizes
	// density equals benefit.
	density := func(o, t int) float64 {
		return marginalBenefit(o, t) / float64(in.objectSize(o))
	}
	remaining := make([]int, len(in.Tiers))
	var h candidateHeap
	for t := range in.Tiers {
		remaining[t] = in.Tiers[t].Capacity
		if in.Tiers[t].Capacity == 0 {
			continue
		}
		for o := 0; o < numObjects; o++ {
			if in.objectSize(o) > in.Tiers[t].Capacity {
				continue
			}
			if d := density(o, t); d > 0 {
				h.push(candidate{obj: trace.ObjectID(o), tier: t, benefit: d})
			}
		}
	}

	// Lazy greedy: densities only shrink, so a popped candidate whose
	// recomputed density still tops the heap is the true maximum.
	for len(h) > 0 {
		c := h.pop()
		t := c.tier
		o := int(c.obj)
		size := in.objectSize(o)
		if remaining[t] < size {
			continue
		}
		p := in.Tiers[t].Proxy
		if _, dup := pl.ByProxy[p][c.obj]; dup {
			continue // proxy already holds o in some tier
		}
		d := density(o, t)
		if d <= 0 {
			continue
		}
		if len(h) > 0 && h[0].benefit > d {
			// Stale: reinsert with the fresh density.
			h.push(candidate{obj: c.obj, tier: t, benefit: d})
			continue
		}
		// Commit the placement.
		pl.ByProxy[p][c.obj] = t
		remaining[t] -= size
		copies[o]++
		if lat := in.Tiers[t].HitLatency; lat < localLat[p*numObjects+o] {
			localLat[p*numObjects+o] = lat
		}
	}
	return pl, nil
}
