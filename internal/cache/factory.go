package cache

import (
	"fmt"
	"sort"
	"sync"
)

// Policy factory registry: the sharded store (internal/store) and the
// live daemons instantiate replacement policies by name, so a shard —
// or a whole deployment — can run any registered policy instead of
// being hardwired to greedy-dual.  Belady and the cost-benefit
// placement are deliberately absent: both need the future request
// sequence, which no online store has.

// Factory builds a policy with the given capacity (bytes in the live
// system, cache units in the simulator).
type Factory func(capacity uint64) Policy

var (
	factoryMu sync.RWMutex
	factories = map[string]Factory{
		"gd":          func(c uint64) Policy { return NewGreedyDual(c) },
		"greedy-dual": func(c uint64) Policy { return NewGreedyDual(c) },
		"gdsf":        func(c uint64) Policy { return NewGDSF(c) },
		"lru":         func(c uint64) Policy { return NewLRU(c) },
		"lfu":         func(c uint64) Policy { return NewLFU(c) },
		"perfect-lfu": func(c uint64) Policy { return NewPerfectLFU(c) },
	}
)

// DefaultPolicy is the registry name the daemons fall back to: the
// greedy-dual algorithm the paper runs everywhere (§4.4).
const DefaultPolicy = "gd"

// Register adds (or replaces) a named factory; extensions use it to
// plug custom policies into the store and the daemons.
func Register(name string, f Factory) error {
	if name == "" || f == nil {
		return fmt.Errorf("cache: Register(%q) with empty name or nil factory", name)
	}
	factoryMu.Lock()
	defer factoryMu.Unlock()
	factories[name] = f
	return nil
}

// New instantiates a registered policy by name ("" means
// DefaultPolicy).
func New(name string, capacity uint64) (Policy, error) {
	if name == "" {
		name = DefaultPolicy
	}
	factoryMu.RLock()
	f, ok := factories[name]
	factoryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("cache: unknown policy %q (have %v)", name, PolicyNames())
	}
	return f(capacity), nil
}

// PolicyNames lists the registered policy names, sorted.
func PolicyNames() []string {
	factoryMu.RLock()
	defer factoryMu.RUnlock()
	out := make([]string, 0, len(factories))
	for name := range factories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
