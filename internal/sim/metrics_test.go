package sim

import (
	"testing"

	"webcache/internal/netmodel"
)

func TestBytesAccounting(t *testing.T) {
	tr := testTrace(t, 50)
	for _, s := range []Scheme{NC, SCEC, HierGD} {
		res := run(t, tr, Config{Scheme: s, ProxyCacheFrac: 0.2, Seed: 1})
		var total uint64
		for _, b := range res.Bytes {
			total += b
		}
		// Unit sizes: bytes == request counts per source.
		if total != uint64(tr.Len()) {
			t.Errorf("%v: byte conservation broken (%d vs %d)", s, total, tr.Len())
		}
		for src := 0; src < netmodel.NumSources; src++ {
			if res.Bytes[src] != uint64(res.Sources[src]) {
				t.Errorf("%v: bytes[%d]=%d != sources %d (unit sizes)", s, src, res.Bytes[src], res.Sources[src])
			}
		}
	}
}

func TestServerByteRatioDropsWithClientCaches(t *testing.T) {
	tr := testTrace(t, 51)
	nc := run(t, tr, Config{Scheme: NC, ProxyCacheFrac: 0.2, Seed: 1})
	hg := run(t, tr, Config{Scheme: HierGD, ProxyCacheFrac: 0.2, Seed: 1})
	if hg.ServerByteRatio() >= nc.ServerByteRatio() {
		t.Errorf("Hier-GD server-byte ratio %.3f >= NC %.3f",
			hg.ServerByteRatio(), nc.ServerByteRatio())
	}
	if nc.ServerByteRatio() <= 0 || nc.ServerByteRatio() > 1 {
		t.Errorf("NC server-byte ratio %.3f out of range", nc.ServerByteRatio())
	}
}

func TestServerByteRatioEmpty(t *testing.T) {
	var r Result
	if r.ServerByteRatio() != 0 {
		t.Error("empty result ratio nonzero")
	}
}
