// Package sim implements the paper's trace-driven simulator for the
// seven caching schemes of §2–3:
//
//	NC      no cache cooperation                      (LFU)
//	SC      simple cooperation: serve misses          (LFU)
//	FC      full cooperation: coordinated placement   (cost-benefit)
//	NC-EC   NC + unified proxy/P2P client cache       (LFU)
//	SC-EC   SC + unified proxy/P2P client cache       (LFU)
//	FC-EC   FC + coordinated two-tier placement       (cost-benefit)
//	HierGD  hierarchical greedy-dual over a real      (greedy-dual)
//	        Pastry P2P client cache with lookup
//	        directories, diversion, piggybacking, push
//
// A Run replays a trace against one scheme and reports the average
// access latency and the mechanism telemetry; package core composes
// runs into the paper's figures.
package sim

import (
	"fmt"
	"strings"
)

// Scheme enumerates the caching schemes.
type Scheme int

// The schemes in the paper's order, plus the Squirrel related-work
// baseline (§6).
const (
	NC Scheme = iota
	SC
	FC
	NCEC
	SCEC
	FCEC
	HierGD
	// Squirrel is Iyer/Rowstron/Druschel's proxy-less peer-to-peer web
	// cache — the system the paper contrasts Hier-GD with.  It is not
	// part of AllSchemes (the paper's seven) but runs in the same
	// simulator for the comparison the paper argues qualitatively.
	Squirrel
	numSchemes
)

// NumSchemes is the number of schemes.
const NumSchemes = int(numSchemes)

// AllSchemes lists every scheme in presentation order.
func AllSchemes() []Scheme {
	return []Scheme{NC, SC, FC, NCEC, SCEC, FCEC, HierGD}
}

var schemeNames = map[Scheme]string{
	NC:       "NC",
	SC:       "SC",
	FC:       "FC",
	NCEC:     "NC-EC",
	SCEC:     "SC-EC",
	FCEC:     "FC-EC",
	HierGD:   "Hier-GD",
	Squirrel: "Squirrel",
}

// String implements fmt.Stringer.
func (s Scheme) String() string {
	if n, ok := schemeNames[s]; ok {
		return n
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// ParseScheme resolves a scheme name (case-insensitive, with or
// without the hyphen).
func ParseScheme(name string) (Scheme, error) {
	key := strings.ToUpper(strings.ReplaceAll(name, "-", ""))
	for s, n := range schemeNames {
		if strings.ToUpper(strings.ReplaceAll(n, "-", "")) == key {
			return s, nil
		}
	}
	return 0, fmt.Errorf("sim: unknown scheme %q", name)
}

// UsesClientCaches reports whether the scheme exploits client caches.
func (s Scheme) UsesClientCaches() bool {
	switch s {
	case NCEC, SCEC, FCEC, HierGD, Squirrel:
		return true
	}
	return false
}

// Cooperative reports whether proxies serve each other's misses.
func (s Scheme) Cooperative() bool {
	switch s {
	case SC, FC, SCEC, FCEC, HierGD:
		return true
	}
	return false
}

// Coordinated reports whether replacement decisions are coordinated
// across proxies (the FC family's cost-benefit placement).
func (s Scheme) Coordinated() bool { return s == FC || s == FCEC }
