package sim

import (
	"math"
	"testing"

	"webcache/internal/netmodel"
	"webcache/internal/prowgen"
	"webcache/internal/trace"
)

// testTrace generates a small default-shaped workload once per test
// binary; runs are cheap against it.
var testTraceCache = map[int64]*trace.Trace{}

func testTrace(t testing.TB, seed int64) *trace.Trace {
	t.Helper()
	if tr, ok := testTraceCache[seed]; ok {
		return tr
	}
	tr, err := prowgen.Generate(prowgen.Config{
		NumRequests:  60_000,
		NumObjects:   3_000,
		NumClients:   200,
		OneTimerFrac: 0.5,
		Alpha:        0.7,
		StackFrac:    0.2,
		Seed:         seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	testTraceCache[seed] = tr
	return tr
}

func run(t testing.TB, tr *trace.Trace, cfg Config) *Result {
	t.Helper()
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatalf("Run(%v): %v", cfg.Scheme, err)
	}
	return res
}

func gains(t testing.TB, tr *trace.Trace, frac float64, schemes ...Scheme) map[Scheme]float64 {
	t.Helper()
	nc := run(t, tr, Config{Scheme: NC, ProxyCacheFrac: frac, Seed: 1})
	out := map[Scheme]float64{NC: 0}
	for _, s := range schemes {
		r := run(t, tr, Config{Scheme: s, ProxyCacheFrac: frac, Seed: 1})
		out[s] = netmodel.Gain(r.AvgLatency, nc.AvgLatency)
	}
	return out
}

func TestRunConservation(t *testing.T) {
	tr := testTrace(t, 1)
	for _, s := range AllSchemes() {
		res := run(t, tr, Config{Scheme: s, ProxyCacheFrac: 0.3, Seed: 1})
		if res.Requests != tr.Len() {
			t.Errorf("%v: requests %d != trace %d", s, res.Requests, tr.Len())
		}
		sum := 0
		for _, n := range res.Sources {
			sum += n
		}
		if sum != res.Requests {
			t.Errorf("%v: source counts %d != requests %d", s, sum, res.Requests)
		}
		if res.AvgLatency <= 0 {
			t.Errorf("%v: avg latency %g", s, res.AvgLatency)
		}
		// Latency must be bounded by pure-server and pure-hit extremes.
		net := netmodel.Default()
		if res.AvgLatency < net.Tl || res.AvgLatency > net.Tl+net.Ts {
			t.Errorf("%v: avg latency %g outside [%g, %g]", s, res.AvgLatency, net.Tl, net.Tl+net.Ts)
		}
	}
}

// The paper's headline ordering (Figure 2): more coordination and
// client caches both help.
func TestSchemeOrdering(t *testing.T) {
	tr := testTrace(t, 2)
	g := gains(t, tr, 0.2, SC, FC, NCEC, SCEC, FCEC, HierGD)
	// Cooperation helps: SC > NC; coordination helps more: FC >= SC.
	if g[SC] <= 0 {
		t.Errorf("SC gain %.3f not positive", g[SC])
	}
	if g[FC] < g[SC] {
		t.Errorf("FC gain %.3f < SC gain %.3f", g[FC], g[SC])
	}
	// Exploiting client caches helps each base scheme.
	if g[NCEC] <= 0 {
		t.Errorf("NC-EC gain %.3f not positive", g[NCEC])
	}
	if g[SCEC] <= g[SC] {
		t.Errorf("SC-EC gain %.3f <= SC gain %.3f", g[SCEC], g[SC])
	}
	if g[FCEC] < g[FC] {
		t.Errorf("FC-EC gain %.3f < FC gain %.3f", g[FCEC], g[FC])
	}
	// Hier-GD beats the simple-cooperation schemes (paper: outperforms
	// SC-EC, SC and NC-EC).
	for _, s := range []Scheme{SC, NCEC} {
		if g[HierGD] <= g[s] {
			t.Errorf("Hier-GD gain %.3f <= %v gain %.3f", g[HierGD], s, g[s])
		}
	}
	// FC-EC is the upper bound among all schemes.
	for s, v := range g {
		if v > g[FCEC]+1e-9 {
			t.Errorf("%v gain %.3f exceeds FC-EC upper bound %.3f", s, v, g[FCEC])
		}
	}
}

// Paper: Hier-GD "performs even better than FC when the size of
// individual proxy caches is small".
func TestHierGDBeatsFCAtSmallCaches(t *testing.T) {
	tr := testTrace(t, 3)
	g := gains(t, tr, 0.1, FC, HierGD)
	if g[HierGD] <= g[FC] {
		t.Errorf("at 10%% cache, Hier-GD gain %.3f <= FC gain %.3f", g[HierGD], g[FC])
	}
}

// Gains shrink as the proxy cache grows (Figure 2's downward slope for
// the EC schemes' advantage).
func TestGainShrinksWithCacheSize(t *testing.T) {
	tr := testTrace(t, 4)
	small := gains(t, tr, 0.1, SCEC)[SCEC]
	large := gains(t, tr, 0.9, SCEC)[SCEC]
	if large >= small {
		t.Errorf("SC-EC gain grew with cache size: %.3f -> %.3f", small, large)
	}
}

func TestDeterminism(t *testing.T) {
	tr := testTrace(t, 5)
	for _, s := range []Scheme{SC, HierGD} {
		a := run(t, tr, Config{Scheme: s, ProxyCacheFrac: 0.2, Seed: 9})
		b := run(t, tr, Config{Scheme: s, ProxyCacheFrac: 0.2, Seed: 9})
		if a.AvgLatency != b.AvgLatency || a.Sources != b.Sources {
			t.Errorf("%v: nondeterministic results", s)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	tr := testTrace(t, 6)
	bad := []Config{
		{Scheme: Scheme(99)},
		{Scheme: NC, ProxyCacheFrac: -1},
		{Scheme: NC, ProxyCacheFrac: 2},
		{Scheme: NC, ClientCacheFrac: 2},
		{Scheme: NC, NumProxies: -1},
		{Scheme: HierGD, BloomFPRate: 2},
	}
	for i, cfg := range bad {
		if _, err := Run(tr, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	empty := &trace.Trace{NumClients: 1, NumObjects: 1}
	if _, err := Run(empty, Config{Scheme: NC}); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestParseScheme(t *testing.T) {
	for _, s := range AllSchemes() {
		got, err := ParseScheme(s.String())
		if err != nil || got != s {
			t.Errorf("ParseScheme(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseScheme("hier-gd"); err != nil {
		t.Error("lower-case parse failed")
	}
	if _, err := ParseScheme("scec"); err != nil {
		t.Error("hyphen-free parse failed")
	}
	if _, err := ParseScheme("bogus"); err == nil {
		t.Error("bogus scheme accepted")
	}
	if Scheme(99).String() == "" {
		t.Error("unknown scheme String empty")
	}
}

func TestSchemePredicates(t *testing.T) {
	if NC.Cooperative() || NC.UsesClientCaches() || NC.Coordinated() {
		t.Error("NC predicates wrong")
	}
	if !SCEC.Cooperative() || !SCEC.UsesClientCaches() || SCEC.Coordinated() {
		t.Error("SC-EC predicates wrong")
	}
	if !FCEC.Coordinated() || !HierGD.Cooperative() || !HierGD.UsesClientCaches() {
		t.Error("FC-EC/Hier-GD predicates wrong")
	}
}

func TestHierGDUsesP2PMechanisms(t *testing.T) {
	tr := testTrace(t, 7)
	res := run(t, tr, Config{Scheme: HierGD, ProxyCacheFrac: 0.15, Seed: 1})
	if res.P2P.Stores == 0 {
		t.Error("no pass-down stores")
	}
	if res.P2P.Lookups == 0 || res.P2P.LookupHits == 0 {
		t.Errorf("lookups=%d hits=%d", res.P2P.Lookups, res.P2P.LookupHits)
	}
	if res.Sources[netmodel.SrcP2P] == 0 {
		t.Error("no requests served from the P2P client cache")
	}
	if res.P2P.PiggybackSave == 0 {
		t.Error("piggybacking never used")
	}
	if res.P2P.Pushes == 0 {
		t.Error("push mechanism never used (2 proxies share objects)")
	}
	if res.DirectoryMemoryBytes == 0 {
		t.Error("directory memory unreported")
	}
	// Exact directory never reports false positives for live objects,
	// but entries can go stale only through failures (none here) —
	// diversion receipts keep it exact.
	if res.DirectoryFalsePositives != 0 {
		t.Errorf("exact directory produced %d false lookups", res.DirectoryFalsePositives)
	}
}

func TestHierGDBloomDirectoryCloseToExact(t *testing.T) {
	tr := testTrace(t, 8)
	exact := run(t, tr, Config{Scheme: HierGD, ProxyCacheFrac: 0.15, Seed: 1})
	blm := run(t, tr, Config{Scheme: HierGD, ProxyCacheFrac: 0.15, Directory: DirBloom, Seed: 1})
	if blm.DirectoryMemoryBytes >= exact.DirectoryMemoryBytes {
		t.Errorf("bloom dir memory %d >= exact %d", blm.DirectoryMemoryBytes, exact.DirectoryMemoryBytes)
	}
	if math.Abs(blm.AvgLatency-exact.AvgLatency)/exact.AvgLatency > 0.05 {
		t.Errorf("bloom latency %.4f deviates >5%% from exact %.4f", blm.AvgLatency, exact.AvgLatency)
	}
}

func TestHierGDNoPiggybackCostsMoreMessages(t *testing.T) {
	tr := testTrace(t, 9)
	with := run(t, tr, Config{Scheme: HierGD, ProxyCacheFrac: 0.15, Seed: 1})
	without := run(t, tr, Config{Scheme: HierGD, ProxyCacheFrac: 0.15, DisablePiggyback: true, Seed: 1})
	if without.P2P.Messages <= with.P2P.Messages {
		t.Errorf("messages without piggyback (%d) <= with (%d)", without.P2P.Messages, with.P2P.Messages)
	}
	if with.P2P.PiggybackSave == 0 || without.P2P.PiggybackSave != 0 {
		t.Errorf("piggyback accounting wrong: %d / %d", with.P2P.PiggybackSave, without.P2P.PiggybackSave)
	}
	// The reference stream is identical, so hit behaviour matches.
	if with.AvgLatency != without.AvgLatency {
		t.Errorf("piggybacking changed latency: %.4f vs %.4f", with.AvgLatency, without.AvgLatency)
	}
}

func TestHierGDFailureInjection(t *testing.T) {
	tr := testTrace(t, 10)
	res := run(t, tr, Config{Scheme: HierGD, ProxyCacheFrac: 0.15, FailEvery: 5_000, Seed: 1})
	if res.FailedClients == 0 {
		t.Fatal("no failures injected")
	}
	if res.P2P.LostOnFailure == 0 {
		t.Error("failures lost no objects")
	}
	healthy := run(t, tr, Config{Scheme: HierGD, ProxyCacheFrac: 0.15, Seed: 1})
	if res.AvgLatency < healthy.AvgLatency {
		t.Errorf("failures improved latency: %.4f < %.4f", res.AvgLatency, healthy.AvgLatency)
	}
	// With replacement the degradation should be milder or equal.
	replaced := run(t, tr, Config{Scheme: HierGD, ProxyCacheFrac: 0.15, FailEvery: 5_000, ReplaceFailed: true, Seed: 1})
	if replaced.AvgLatency > res.AvgLatency*1.05 {
		t.Errorf("replacement made things notably worse: %.4f vs %.4f", replaced.AvgLatency, res.AvgLatency)
	}
}

func TestSinglePoolECMode(t *testing.T) {
	tr := testTrace(t, 11)
	two := run(t, tr, Config{Scheme: SCEC, ProxyCacheFrac: 0.2, Seed: 1})
	pool := run(t, tr, Config{Scheme: SCEC, ProxyCacheFrac: 0.2, SinglePoolEC: true, Seed: 1})
	// Pooled mode charges every unified hit at proxy latency, so no
	// request is accounted to the P2P tier.
	if pool.Sources[netmodel.SrcP2P] != 0 {
		t.Errorf("single pool reported %d P2P-tier hits", pool.Sources[netmodel.SrcP2P])
	}
	if two.Sources[netmodel.SrcP2P] == 0 {
		t.Error("two-level mode reported no client-tier hits")
	}
	// The two modes manage the same aggregate capacity: results stay
	// in the same ballpark (the tier structures differ slightly).
	if ratio := pool.AvgLatency / two.AvgLatency; ratio < 0.7 || ratio > 1.3 {
		t.Errorf("pool/two-level latency ratio %.2f out of band", ratio)
	}
}

func TestClientClusterSizeHelpsHierGD(t *testing.T) {
	// Figure 5(c): more client caches -> bigger P2P cache -> more gain.
	tr := testTrace(t, 12)
	nc := run(t, tr, Config{Scheme: NC, ProxyCacheFrac: 0.1, Seed: 1})
	small := run(t, tr, Config{Scheme: HierGD, ProxyCacheFrac: 0.1, ClientsPerCluster: 20, Seed: 1})
	large := run(t, tr, Config{Scheme: HierGD, ProxyCacheFrac: 0.1, ClientsPerCluster: 100, Seed: 1})
	gs := netmodel.Gain(small.AvgLatency, nc.AvgLatency)
	gl := netmodel.Gain(large.AvgLatency, nc.AvgLatency)
	if gl <= gs {
		t.Errorf("gain did not grow with cluster size: %.3f (20) vs %.3f (100)", gs, gl)
	}
}

func TestProxyClusterSizeHelpsSC(t *testing.T) {
	// Figure 5(d): more proxies -> more sharing opportunities.
	tr := testTrace(t, 13)
	gain := func(numProxies int) float64 {
		nc := run(t, tr, Config{Scheme: NC, NumProxies: numProxies, ClientsPerCluster: 20, ProxyCacheFrac: 0.1, Seed: 1})
		sc := run(t, tr, Config{Scheme: SC, NumProxies: numProxies, ClientsPerCluster: 20, ProxyCacheFrac: 0.1, Seed: 1})
		return netmodel.Gain(sc.AvgLatency, nc.AvgLatency)
	}
	if g2, g5 := gain(2), gain(5); g5 <= g2 {
		t.Errorf("SC gain did not grow with proxy cluster: %.3f (2) vs %.3f (5)", g2, g5)
	}
}

func TestNetworkSensitivity(t *testing.T) {
	// Figure 5(a): larger Ts/Tc -> larger Hier-GD gain.
	tr := testTrace(t, 14)
	gain := func(ratio float64) float64 {
		net, err := netmodel.New(netmodel.Params{ServerProxyRatio: ratio})
		if err != nil {
			t.Fatal(err)
		}
		nc := run(t, tr, Config{Scheme: NC, Net: net, ProxyCacheFrac: 0.2, Seed: 1})
		hg := run(t, tr, Config{Scheme: HierGD, Net: net, ProxyCacheFrac: 0.2, Seed: 1})
		return netmodel.Gain(hg.AvgLatency, nc.AvgLatency)
	}
	if g2, g10 := gain(2), gain(10); g10 <= g2 {
		t.Errorf("gain did not grow with Ts/Tc: %.3f (2) vs %.3f (10)", g2, g10)
	}
}

func TestResultString(t *testing.T) {
	tr := testTrace(t, 15)
	res := run(t, tr, Config{Scheme: SC, ProxyCacheFrac: 0.2, Seed: 1})
	if res.String() == "" {
		t.Error("empty result string")
	}
	if res.LocalHitRatio() <= 0 || res.LocalHitRatio() > 1 {
		t.Errorf("local hit ratio %g", res.LocalHitRatio())
	}
}

func TestTieredCachePromoteDemote(t *testing.T) {
	tc := newTieredCache(2, 3, BasePerfectLFU, false, nil, "t")
	ins := func(obj trace.ObjectID) { tc.insert(entryFor(obj, 1, 1)) }
	ins(1)
	ins(2)
	ins(3) // proxy tier full: someone demotes to client tier
	if tc.len() != 3 {
		t.Fatalf("population = %d, want 3", tc.len())
	}
	if got := tc.access(1); got == tierMiss {
		t.Fatal("object 1 lost from unified cache")
	}
	// Fill the client tier and beyond: total capacity 5.
	for obj := trace.ObjectID(4); obj <= 9; obj++ {
		ins(obj)
	}
	if tc.len() > 5 {
		t.Fatalf("population %d exceeds unified capacity 5", tc.len())
	}
	// Exclusivity: no object may be in both tiers.
	for obj := trace.ObjectID(0); obj < 12; obj++ {
		if tc.upper.Contains(obj) && tc.lower.Contains(obj) {
			t.Fatalf("object %d duplicated across tiers", obj)
		}
	}
}

func TestTieredCacheClientHitPromotes(t *testing.T) {
	tc := newTieredCache(1, 2, BasePerfectLFU, false, nil, "t")
	tc.insert(entryFor(1, 1, 1))
	tc.insert(entryFor(2, 1, 1)) // 1 demotes
	if !tc.lower.Contains(1) {
		t.Fatal("expected 1 in client tier")
	}
	if got := tc.access(1); got != tierClient {
		t.Fatalf("access(1) = %v, want tierClient", got)
	}
	if !tc.upper.Contains(1) {
		t.Error("client-tier hit did not promote")
	}
	if tc.lower.Contains(1) {
		t.Error("promoted object still in client tier")
	}
}

func TestTieredCacheSinglePool(t *testing.T) {
	tc := newTieredCache(2, 3, BasePerfectLFU, true, nil, "t")
	for obj := trace.ObjectID(0); obj < 5; obj++ {
		tc.insert(entryFor(obj, 1, 1))
	}
	if tc.len() != 5 {
		t.Fatalf("single pool holds %d, want 5", tc.len())
	}
	for obj := trace.ObjectID(0); obj < 5; obj++ {
		if got := tc.access(obj); got != tierProxy {
			t.Fatalf("single-pool hit reported %v", got)
		}
	}
}

// genAffinity builds a 2-cluster trace whose clusters align with the
// default 2-proxy mapping.
func genAffinity(affinity float64) (*trace.Trace, error) {
	return prowgen.Generate(prowgen.Config{
		NumRequests:     60_000,
		NumObjects:      2_500,
		NumClients:      200,
		NumClusters:     2,
		ClusterAffinity: affinity,
		Seed:            9,
	})
}

func TestHierGDHotReplication(t *testing.T) {
	tr := testTrace(t, 70)
	plain := run(t, tr, Config{Scheme: HierGD, ProxyCacheFrac: 0.1, Seed: 1})
	repl := run(t, tr, Config{Scheme: HierGD, ProxyCacheFrac: 0.1, ReplicateHotAfter: 50, Seed: 1})
	if repl.P2P.Replications == 0 {
		t.Fatal("no replications with the option on")
	}
	if plain.P2P.Replications != 0 {
		t.Fatal("replications without the option")
	}
	if repl.P2PMaxNodeServes >= plain.P2PMaxNodeServes {
		t.Errorf("hotspot load not reduced: %d vs %d", repl.P2PMaxNodeServes, plain.P2PMaxNodeServes)
	}
	// Hit behaviour stays effectively unchanged.
	dp := float64(repl.Sources[netmodel.SrcP2P]-plain.Sources[netmodel.SrcP2P]) / float64(tr.Len())
	if dp < -0.02 {
		t.Errorf("replication cost %0.3f of P2P hits", -dp)
	}
}
