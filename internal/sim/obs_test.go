package sim

import (
	"testing"

	"webcache/internal/obs"
	"webcache/internal/prowgen"
)

// TestRunPublishesMetrics replays a small trace with a registry
// attached and checks the published sim.* namespace is complete and
// consistent with the Result — and that a registry-free run returns
// the identical Result (instrumentation must not perturb simulation).
func TestRunPublishesMetrics(t *testing.T) {
	tr, err := prowgen.Generate(prowgen.Config{
		NumRequests: 30_000, NumObjects: 1_000, NumClients: 200, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry("test-run")
	cfg := Config{Scheme: HierGD, ProxyCacheFrac: 0.2, Seed: 1, Obs: reg}
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}

	vals := reg.Values()
	if len(vals) < 10 {
		t.Fatalf("registry has %d metrics, want >= 10: %v", len(vals), vals)
	}
	if vals["sim.runs"] != 1 {
		t.Fatalf("sim.runs = %g, want 1", vals["sim.runs"])
	}
	if got := vals["sim.requests"]; got != float64(res.Requests) {
		t.Fatalf("sim.requests = %g, want %d", got, res.Requests)
	}
	var serves float64
	for _, src := range []string{"local_proxy", "p2p", "remote_proxy", "server"} {
		serves += vals["sim.serves."+src]
	}
	if serves != float64(res.Requests) {
		t.Fatalf("serve counts sum to %g, want %d", serves, res.Requests)
	}
	if got := vals["sim.proxy.evictions"]; got != float64(res.ProxyEvictions) {
		t.Fatalf("sim.proxy.evictions = %g, want %d", got, res.ProxyEvictions)
	}
	if res.ProxyEvictions == 0 {
		t.Fatal("expected proxy evictions at 20% cache")
	}
	if got := vals["sim.p2p.stores"]; got != float64(res.P2P.Stores) {
		t.Fatalf("sim.p2p.stores = %g, want %d", got, res.P2P.Stores)
	}
	if vals["sim.run.count"] != 1 || vals["sim.run.seconds"] <= 0 {
		t.Fatal("sim.run timer missing")
	}

	// The disabled path must produce the identical result.
	cfg.Obs = nil
	bare, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bare.AvgLatency != res.AvgLatency || bare.Sources != res.Sources ||
		bare.ProxyEvictions != res.ProxyEvictions {
		t.Fatal("instrumented and bare runs diverged")
	}
}

// TestProxyEvictionsLFU checks the tiered-cache eviction telemetry on
// the LFU family, and that maintenance ticks fire with digests on.
func TestProxyEvictionsLFU(t *testing.T) {
	tr, err := prowgen.Generate(prowgen.Config{
		NumRequests: 30_000, NumObjects: 1_000, NumClients: 200, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tr, Config{Scheme: SC, ProxyCacheFrac: 0.1, DigestInterval: 5_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.ProxyEvictions == 0 {
		t.Fatal("SC at 10% cache must evict")
	}
	if res.MaintenanceTicks == 0 {
		t.Fatal("digest exchanges must count as maintenance ticks")
	}
	if res.DigestRebuilds == 0 {
		t.Fatal("expected digest rebuilds")
	}
	if res.AvgLatency <= 0 {
		t.Fatal("no latency recorded")
	}
}
