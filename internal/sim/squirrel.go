package sim

import (
	"fmt"

	"webcache/internal/cache"
	"webcache/internal/invariant"
	"webcache/internal/netmodel"
	"webcache/internal/obs"
	"webcache/internal/p2p"
	"webcache/internal/trace"
)

// squirrelEngine implements the Squirrel home-node model (Iyer,
// Rowstron & Druschel, PODC 2002) — the related system the paper
// differentiates itself from (§6): a decentralized peer-to-peer web
// cache pooling browser caches *in the absence of the proxy*.
//
// Per-request behaviour (home-store model):
//
//  1. the client routes the request through the Pastry overlay to the
//     object's home node (its own cache partition acts as L1, but the
//     trace is proxy-level — browser hits are already filtered out, as
//     for every other scheme);
//  2. a home-node hit serves at LAN cost (Tp2p);
//  3. a miss fetches from the origin server and the home node caches
//     the object.
//
// Squirrel has no proxy tier and, crucially, no inter-organization
// sharing: client caches sit behind their organization's firewall, so
// a Squirrel cluster in one organization cannot serve another (the
// paper's §6 argument for keeping proxies in the loop).  The simulator
// therefore gives each cluster an isolated overlay, and the
// Hier-GD-vs-Squirrel comparison quantifies what proxy cooperation
// adds on top of client-cache pooling.
//
// Squirrel is not one of the paper's seven schemes; it is provided as
// the related-work baseline (Scheme value Squirrel).
type squirrelEngine struct {
	cfg      Config
	net      netmodel.Model
	clusters []*p2p.Cluster
	// accts are the per-cluster conservation oracles; nil entries when
	// invariant checking is off.
	accts []*invariant.ClusterAccountant
}

func newSquirrelEngine(cfg Config, sz sizing) (*squirrelEngine, error) {
	e := &squirrelEngine{cfg: cfg, net: cfg.Net}
	for p := 0; p < cfg.NumProxies; p++ {
		label := fmt.Sprintf("squirrel%d", p)
		// Squirrel pools the whole client cache budget: the proxy-tier
		// budget does not exist, so each client contributes only its
		// cooperative partition, as in Hier-GD.
		pcfg := p2p.Config{
			NumClients:        cfg.P2PClientCaches,
			PerClientCapacity: sz.clientCap[p],
			DisableDiversion:  cfg.DisableDiversion,
			Seed:              cfg.Seed + int64(p)*104729,
		}
		if cfg.Check != nil {
			pcfg.WrapCache = func(cp cache.Policy, clabel string) cache.Policy {
				return invariant.WrapPolicy(cp, cfg.Check, label+"."+clabel)
			}
		}
		cluster, err := p2p.NewCluster(pcfg)
		if err != nil {
			return nil, err
		}
		e.clusters = append(e.clusters, cluster)
		e.accts = append(e.accts, invariant.NewClusterAccountant(cfg.Check, label))
	}
	return e, nil
}

func (e *squirrelEngine) serve(obj trace.ObjectID, size uint32, proxy, member int, st *obs.SpanTrace) (netmodel.Source, float64) {
	cl := e.clusters[proxy]
	member %= e.cfg.P2PClientCaches
	lr, err := cl.Lookup(obj, member)
	if err == nil {
		e.accts[proxy].RecordLookup(obj, lr)
	}
	if err == nil && lr.Found {
		// Home-node hit: the request goes client -> home node directly
		// over the LAN; there is no proxy leg (Tl) at all.
		lat := e.net.Tp2p
		if lr.Hops > 1 {
			lat += float64(lr.Hops-1) * e.net.PerHop
		}
		st.Span("p2p.route", string(netmodel.CompTp2p), lat)
		return netmodel.SrcP2P, lat
	}
	// Miss: the requesting client fetches from the origin server and
	// hands the object to its home node for storage.  No proxy: the
	// client pays the server latency without the Tl leg — the
	// decomposition deliberately shows Squirrel off the end-to-end
	// model every other scheme follows (see CheckDecomposition).
	st.Span("origin.fetch", string(netmodel.CompTs), e.net.Ts)
	r, err := cl.StoreEvicted(entryFor(obj, size, e.net.Ts), member, true)
	if err != nil {
		return netmodel.SrcServer, e.net.Ts
	}
	e.accts[proxy].RecordStore(r)
	return netmodel.SrcServer, e.net.Ts
}

func (e *squirrelEngine) finish(res *Result) {
	for p, cl := range e.clusters {
		if chk := e.cfg.Check; chk != nil {
			cl.Overlay().Stabilize()
			invariant.CheckRing(chk, cl.Overlay(), 32)
			e.accts[p].Reconcile(cl)
		}
		res.addP2P(cl.Stats())
	}
}
