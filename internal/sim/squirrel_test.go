package sim

import (
	"testing"

	"webcache/internal/netmodel"
)

func TestSquirrelRuns(t *testing.T) {
	tr := testTrace(t, 40)
	res := run(t, tr, Config{Scheme: Squirrel, ProxyCacheFrac: 0.2, Seed: 1})
	sum := 0
	for _, n := range res.Sources {
		sum += n
	}
	if sum != tr.Len() {
		t.Fatalf("conservation broken: %d vs %d", sum, tr.Len())
	}
	// Squirrel has no proxy tier and no inter-proxy sharing.
	if res.Sources[netmodel.SrcLocalProxy] != 0 {
		t.Errorf("Squirrel served %d requests from a proxy cache", res.Sources[netmodel.SrcLocalProxy])
	}
	if res.Sources[netmodel.SrcRemoteProxy] != 0 {
		t.Errorf("Squirrel served %d requests from remote proxies", res.Sources[netmodel.SrcRemoteProxy])
	}
	if res.Sources[netmodel.SrcP2P] == 0 {
		t.Error("Squirrel never hit its home-node cache")
	}
	if res.P2P.Stores == 0 || res.P2P.Lookups == 0 {
		t.Error("Squirrel did not exercise the P2P machinery")
	}
}

func TestSquirrelSchemePredicates(t *testing.T) {
	if Squirrel.Cooperative() {
		t.Error("Squirrel cannot cooperate across organizations (firewalls)")
	}
	if !Squirrel.UsesClientCaches() {
		t.Error("Squirrel is built from client caches")
	}
	if Squirrel.Coordinated() {
		t.Error("Squirrel is not coordinated")
	}
	s, err := ParseScheme("squirrel")
	if err != nil || s != Squirrel {
		t.Errorf("ParseScheme(squirrel) = %v, %v", s, err)
	}
	// The paper's seven stay the paper's seven.
	for _, s := range AllSchemes() {
		if s == Squirrel {
			t.Error("Squirrel leaked into AllSchemes")
		}
	}
	if len(AllSchemes()) != 7 {
		t.Errorf("AllSchemes = %d", len(AllSchemes()))
	}
}

// The paper's §6 argument, quantified: within one organization
// Squirrel pools the same client caches Hier-GD does, but Hier-GD
// additionally wields the proxy cache and inter-proxy cooperation, so
// it must win.  Squirrel in turn beats nothing-but-browser-caches (NC
// with a tiny proxy) when the pooled cache carries weight.
func TestHierGDBeatsSquirrel(t *testing.T) {
	tr := testTrace(t, 41)
	sq := run(t, tr, Config{Scheme: Squirrel, ProxyCacheFrac: 0.2, Seed: 1})
	hg := run(t, tr, Config{Scheme: HierGD, ProxyCacheFrac: 0.2, Seed: 1})
	if hg.AvgLatency >= sq.AvgLatency {
		t.Errorf("Hier-GD (%.4f) did not beat Squirrel (%.4f)", hg.AvgLatency, sq.AvgLatency)
	}
}

// Squirrel's home-node hits bypass the proxy leg entirely, so its hit
// latency is Tp2p < Tl+Tp2p; its misses cost Ts (no proxy leg either).
func TestSquirrelLatencyAccounting(t *testing.T) {
	tr := testTrace(t, 42)
	res := run(t, tr, Config{Scheme: Squirrel, ProxyCacheFrac: 0.2, Seed: 1})
	net := netmodel.Default()
	hits := float64(res.Sources[netmodel.SrcP2P])
	misses := float64(res.Sources[netmodel.SrcServer])
	want := (hits*net.Tp2p + misses*net.Ts) / float64(res.Requests)
	if diff := res.AvgLatency - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("avg latency %.6f != reconstructed %.6f", res.AvgLatency, want)
	}
}
