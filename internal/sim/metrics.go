package sim

import (
	"fmt"
	"strings"

	"webcache/internal/netmodel"
	"webcache/internal/obs"
	"webcache/internal/p2p"
)

// Result is the outcome of replaying one trace under one scheme.
type Result struct {
	Scheme Scheme
	// Requests replayed and the latency totals.
	Requests     int
	TotalLatency float64
	AvgLatency   float64
	// Sources counts requests by serving tier.
	Sources [netmodel.NumSources]int
	// Bytes sums object sizes by serving tier (cache units): the
	// traffic each tier carried.  Bytes[SrcServer] is the origin-
	// server load that caching did not absorb; Bytes[SrcRemoteProxy]
	// is inter-proxy WAN traffic.
	Bytes [netmodel.NumSources]uint64
	// Hier-GD directory telemetry.
	DirectoryFalsePositives int
	DirectoryMemoryBytes    uint64
	// P2P aggregates the client-cluster mechanism stats over all
	// proxies (EC upper-bound schemes leave it zero).
	P2P p2p.Stats
	// Sizing echo for reporting.
	InfiniteCacheSizes []int
	ProxyCapacities    []uint64
	ClientCapacity     uint64
	// FailedClients counts injected client-cache crashes.
	FailedClients int
	// Chaos-scenario telemetry (all zero outside chaos runs).
	// FlashChurned counts clients killed by the flash-churn storm;
	// PoisonInjected / PoisonSwept count bogus directory entries
	// planted and removed; ByzantineServes counts corrupted P2P serves
	// and ByzantineDetected the ones the digest-sampling defense
	// caught.
	FlashChurned      int
	PoisonInjected    int
	PoisonSwept       int
	ByzantineServes   int
	ByzantineDetected int
	// Inter-proxy digest telemetry (Config.DigestInterval > 0).
	DigestStaleProbes int    // wasted Tc probes on stale digest entries
	DigestMemoryBytes uint64 // advertised digest footprint per rebuild
	DigestRebuilds    int
	// Fleet telemetry (Config.FleetSize > 1; all zero otherwise).
	// FleetMembers echoes the fleet size; Routed counts front misses
	// sent to another member, split into RoutedHits (served from the
	// member's cache) and RoutedOrigin (the member filled from origin
	// on the front's behalf).  RouteFailed counts requests that fell
	// through to origin uncached because no candidate was reachable;
	// RouteSkipped counts candidates bypassed by the partition.
	// FleetReplicas counts hot-object copies placed; FleetHotKeys is
	// the load estimator's tracked-key count at finish.
	FleetMembers      int
	FleetRouted       int
	FleetRoutedHits   int
	FleetRoutedOrigin int
	FleetRouteFailed  int
	FleetRouteSkipped int
	FleetReplicas     int
	FleetHotKeys      int
	// P2PMaxNodeServes is the hottest client cache's lookup-serve
	// count across all clusters (the hotspot metric replication
	// improves).
	P2PMaxNodeServes int
	// ProxyEvictions counts objects evicted from proxy-tier caches:
	// destaged into the client tier (Hier-GD, EC schemes) or
	// discarded outright (NC, SC).
	ProxyEvictions int
	// MaintenanceTicks counts background-maintenance activations that
	// did work: digest rebuild rounds, FC window re-placements, and
	// failure-injection rounds.
	MaintenanceTicks int
	// InvariantChecks / InvariantViolations snapshot the Config.Check
	// checker after the run (cumulative when runs share a Checker;
	// zero when checking is disabled).
	InvariantChecks     int64
	InvariantViolations int64
}

// HitRatio returns the fraction of requests served by src.
func (r *Result) HitRatio(src netmodel.Source) float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Sources[src]) / float64(r.Requests)
}

// LocalHitRatio is the combined local fraction (proxy + own P2P cache).
func (r *Result) LocalHitRatio() float64 {
	return r.HitRatio(netmodel.SrcLocalProxy) + r.HitRatio(netmodel.SrcP2P)
}

// ServerByteRatio is the fraction of requested bytes that still had to
// come from origin servers — the load-reduction metric of the paper's
// introduction ("reduce network traffic and the load on Web servers").
func (r *Result) ServerByteRatio() float64 {
	var total uint64
	for _, b := range r.Bytes {
		total += b
	}
	if total == 0 {
		return 0
	}
	return float64(r.Bytes[netmodel.SrcServer]) / float64(total)
}

// String renders a one-line summary.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-7s avg=%.4f", r.Scheme, r.AvgLatency)
	for src := 0; src < netmodel.NumSources; src++ {
		fmt.Fprintf(&b, " %s=%.1f%%", netmodel.Source(src), 100*r.HitRatio(netmodel.Source(src)))
	}
	if r.DirectoryFalsePositives > 0 {
		fmt.Fprintf(&b, " dirFP=%d", r.DirectoryFalsePositives)
	}
	return b.String()
}

// sourceMetric maps a serving tier to its metric-name suffix.
func sourceMetric(src netmodel.Source) string {
	switch src {
	case netmodel.SrcLocalProxy:
		return "local_proxy"
	case netmodel.SrcP2P:
		return "p2p"
	case netmodel.SrcRemoteProxy:
		return "remote_proxy"
	default:
		return "server"
	}
}

// PublishMetrics folds the result into a metric registry under the
// sim.* namespace (see METRICS.md for the full glossary).  Everything
// cumulative is a counter so concurrent sweep runs sharing one
// registry aggregate correctly; per-run peaks use SetMax gauges.
// A nil registry makes this a no-op.
func (r *Result) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("sim.runs").Inc()
	reg.Counter("sim.requests").Add(int64(r.Requests))
	reg.Gauge("sim.latency.total").Add(r.TotalLatency)
	for src := 0; src < netmodel.NumSources; src++ {
		name := sourceMetric(netmodel.Source(src))
		reg.Counter("sim.serves." + name).Add(int64(r.Sources[src]))
		reg.Counter("sim.bytes." + name).Add(int64(r.Bytes[src]))
	}
	reg.Counter("sim.proxy.evictions").Add(int64(r.ProxyEvictions))
	reg.Counter("sim.maintenance.ticks").Add(int64(r.MaintenanceTicks))
	reg.Counter("sim.failed_clients").Add(int64(r.FailedClients))
	reg.Counter("sim.chaos.flash_churned").Add(int64(r.FlashChurned))
	reg.Counter("sim.chaos.poison_injected").Add(int64(r.PoisonInjected))
	reg.Counter("sim.chaos.poison_swept").Add(int64(r.PoisonSwept))
	reg.Counter("sim.chaos.byzantine_serves").Add(int64(r.ByzantineServes))
	reg.Counter("sim.chaos.byzantine_detected").Add(int64(r.ByzantineDetected))
	reg.Counter("sim.directory.false_positives").Add(int64(r.DirectoryFalsePositives))
	reg.Gauge("sim.directory.memory_bytes").SetMax(float64(r.DirectoryMemoryBytes))
	reg.Counter("sim.digest.stale_probes").Add(int64(r.DigestStaleProbes))
	reg.Counter("sim.digest.rebuilds").Add(int64(r.DigestRebuilds))
	reg.Gauge("sim.digest.memory_bytes").SetMax(float64(r.DigestMemoryBytes))
	reg.Gauge("sim.p2p.max_node_serves").SetMax(float64(r.P2PMaxNodeServes))
	if r.FleetMembers > 0 {
		reg.Gauge("sim.fleet.members").SetMax(float64(r.FleetMembers))
		reg.Counter("sim.fleet.routed").Add(int64(r.FleetRouted))
		reg.Counter("sim.fleet.routed_hits").Add(int64(r.FleetRoutedHits))
		reg.Counter("sim.fleet.routed_origin").Add(int64(r.FleetRoutedOrigin))
		reg.Counter("sim.fleet.route_failed").Add(int64(r.FleetRouteFailed))
		reg.Counter("sim.fleet.route_skipped").Add(int64(r.FleetRouteSkipped))
		reg.Counter("sim.fleet.replicas").Add(int64(r.FleetReplicas))
		reg.Gauge("sim.fleet.hot_keys").SetMax(float64(r.FleetHotKeys))
	}

	p := r.P2P
	for _, m := range []struct {
		name string
		v    int
	}{
		{"stores", p.Stores}, {"diversions", p.Diversions},
		{"replacements", p.Replacements}, {"evictions", p.Evictions},
		{"lookups", p.Lookups}, {"lookup_hits", p.LookupHits},
		{"pointer_hits", p.PointerHits}, {"pushes", p.Pushes},
		{"messages", p.Messages}, {"piggyback_saves", p.PiggybackSave},
		{"route_hops", p.RouteHops}, {"handoffs", p.Handoffs},
		{"lost_on_failure", p.LostOnFailure}, {"replications", p.Replications},
	} {
		reg.Counter("sim.p2p." + m.name).Add(int64(m.v))
	}
}

// addP2P folds one cluster's stats into the result.
func (r *Result) addP2P(s p2p.Stats) {
	r.P2P.Stores += s.Stores
	r.P2P.Diversions += s.Diversions
	r.P2P.Replacements += s.Replacements
	r.P2P.Evictions += s.Evictions
	r.P2P.Lookups += s.Lookups
	r.P2P.LookupHits += s.LookupHits
	r.P2P.PointerHits += s.PointerHits
	r.P2P.Pushes += s.Pushes
	r.P2P.Messages += s.Messages
	r.P2P.PiggybackSave += s.PiggybackSave
	r.P2P.RouteHops += s.RouteHops
	r.P2P.Handoffs += s.Handoffs
	r.P2P.LostOnFailure += s.LostOnFailure
	r.P2P.Replications += s.Replications
}
