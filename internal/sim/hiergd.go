package sim

import (
	"fmt"
	"math/rand"

	"webcache/internal/cache"
	"webcache/internal/directory"
	"webcache/internal/invariant"
	"webcache/internal/netmodel"
	"webcache/internal/obs"
	"webcache/internal/p2p"
	"webcache/internal/trace"
)

// hierGDEngine implements Hier-GD (paper §3–4) end to end:
//
//   - each proxy runs greedy-dual over its proxy cache;
//   - each proxy owns a real P2P client cluster (Pastry overlay,
//     greedy-dual at every client cache, object diversion);
//   - proxy evictions are passed down into the P2P client cache,
//     piggybacked on HTTP responses unless disabled;
//   - the proxy maintains a lookup directory (Exact or Bloom) kept
//     consistent by store receipts;
//   - cooperating proxies serve each other from proxy caches or, via
//     the push mechanism, from their P2P client caches.
type hierGDEngine struct {
	cfg     Config
	net     netmodel.Model
	proxies []*hierGDProxy
	rng     *rand.Rand
	failed  int
	// staleProbes counts wasted Tc probes against stale inter-proxy
	// digests (obs.Counter rather than an ad-hoc int so the value is
	// shareable with a live registry; folded into the Result at
	// finish).
	staleProbes obs.Counter
	// recent is a ring buffer of recently requested objects — the
	// directory-poisoning attack's candidate pool (only maintained
	// when PoisonEvery > 0, so the default run's state is untouched).
	recent    []trace.ObjectID
	recentIdx int
	// Chaos telemetry (folded into the Result at finish).
	flashChurned, poisonInjected, poisonSwept int
	byzantineServes, byzantineDetected        int
}

type hierGDProxy struct {
	// cache is greedy-dual per the paper, or GDSF with Config.ProxyGDSF
	// (the extension policy).
	cache   cache.Policy
	cluster *p2p.Cluster
	dir     directory.Directory
	// dirFP counts lookup-directory false positives (Bloom aliasing or
	// churn staleness); evictions counts destaged proxy evictions.
	dirFP     obs.Counter
	evictions obs.Counter
	// digest advertises everything this proxy can serve to its
	// cooperating proxies (proxy cache + P2P client cache); nil under
	// perfect inter-proxy knowledge.
	digest *digest
	// acct is the P2P conservation oracle fed from this proxy's receipt
	// stream; nil when invariant checking is off.
	acct *invariant.ClusterAccountant
}

// serveable snapshots everything the proxy can serve a peer: its own
// cache plus the P2P client cache (as recorded in its directory).
func (px *hierGDProxy) serveable() []trace.ObjectID {
	return append(px.cache.Objects(), px.dir.Objects()...)
}

func newHierGDEngine(cfg Config, sz sizing) (*hierGDEngine, error) {
	e := &hierGDEngine{
		cfg: cfg,
		net: cfg.Net,
		rng: rand.New(rand.NewSource(cfg.Seed + 0x5ee1)),
	}
	for p := 0; p < cfg.NumProxies; p++ {
		label := fmt.Sprintf("proxy%d", p)
		pcfg := p2p.Config{
			NumClients:        cfg.P2PClientCaches,
			PerClientCapacity: sz.clientCap[p],
			DisableDiversion:  cfg.DisableDiversion,
			ReplicateHotAfter: cfg.ReplicateHotAfter,
			Seed:              cfg.Seed + int64(p)*7919,
		}
		if cfg.Check != nil {
			pcfg.WrapCache = func(cp cache.Policy, clabel string) cache.Policy {
				return invariant.WrapPolicy(cp, cfg.Check, label+"."+clabel)
			}
		}
		cluster, err := p2p.NewCluster(pcfg)
		if err != nil {
			return nil, err
		}
		var dir directory.Directory
		if cfg.Directory == DirBloom {
			dir = directory.NewBloom(int(sz.p2pCap[p])+1, cfg.BloomFPRate)
		} else {
			dir = directory.NewExact()
		}
		dir = invariant.WrapDirectory(dir, cfg.Check, label)
		var proxyCache cache.Policy = cache.NewGreedyDual(sz.proxyCap[p])
		if cfg.ProxyGDSF {
			proxyCache = cache.NewGDSF(sz.proxyCap[p])
		}
		px := &hierGDProxy{
			cache:   invariant.WrapPolicy(proxyCache, cfg.Check, label+".cache"),
			cluster: cluster,
			dir:     dir,
			acct:    invariant.NewClusterAccountant(cfg.Check, label),
		}
		if cfg.ReplaceFailed || cfg.ReplicateHotAfter > 0 {
			// Churn joins hand objects off without receipts and hot-object
			// replication copies without them: ground-truth reconciliation
			// would report false positives, so only the ledger identity
			// stays on.
			px.acct.Lenient()
		}
		if cfg.DigestInterval > 0 {
			px.digest = newDigest(int(sz.proxyCap[p]+sz.p2pCap[p]), cfg.DigestFPRate, px.serveable)
		}
		e.proxies = append(e.proxies, px)
	}
	return e, nil
}

func (e *hierGDEngine) serve(obj trace.ObjectID, size uint32, proxy, member int, st *obs.SpanTrace) (netmodel.Source, float64) {
	px := e.proxies[proxy]
	// Only the first P2PClientCaches members contribute cache nodes;
	// requests from other members route via their nearest contributor.
	member %= e.cfg.P2PClientCaches

	// 1. Local proxy cache (greedy-dual hit refreshes H).
	if px.cache.Access(obj) {
		st.Span("proxy.cache", string(netmodel.CompTl), e.net.Tl)
		return netmodel.SrcLocalProxy, e.net.Latency(netmodel.SrcLocalProxy)
	}

	// Every miss path below still pays the client->proxy leg.
	st.Span("proxy.cache", string(netmodel.CompTl), e.net.Tl)

	// extra accumulates the latency of wasted probes (stale digests,
	// directory false positives) charged on top of wherever the object
	// is finally found.
	extra := 0.0

	// The directory-poisoning attack draws its bogus entries from
	// recently requested objects, so re-requests actually pay for them.
	if e.cfg.PoisonEvery > 0 {
		if len(e.recent) < 256 {
			e.recent = append(e.recent, obj)
		} else {
			e.recent[e.recentIdx%len(e.recent)] = obj
			e.recentIdx++
		}
	}

	// 2. Own P2P client cache, if the lookup directory says so (§4.2).
	//    The object is served from the client cache and stays there —
	//    the proxy redirects the request, the response does not flow
	//    through the proxy cache.
	if px.dir.MayContain(obj) {
		lr, err := px.cluster.Lookup(obj, member)
		if err == nil {
			px.acct.RecordLookup(obj, lr)
		}
		if err == nil && lr.Found {
			for _, gone := range lr.Displaced {
				px.dir.Remove(gone) // hot-object replica displaced these
			}
			lat := e.net.LatencyHops(netmodel.SrcP2P, lr.Hops)
			// Byzantine clients corrupt a fraction of P2P serves.  A
			// detected corruption (the digest-sampling defense) wastes
			// the P2P fetch and falls through toward peers/origin — the
			// object *is* resident, so the directory entry stands.  An
			// undetected one is served to the client as if it were good.
			if e.cfg.ByzantineFraction > 0 && e.rng.Float64() < e.cfg.ByzantineFraction {
				e.byzantineServes++
				if e.cfg.VerifyFraction > 0 && e.rng.Float64() < e.cfg.VerifyFraction {
					e.byzantineDetected++
					st.WastedSpan("p2p.corrupt", string(netmodel.CompTp2p), lat-e.net.Tl)
					extra += lat - e.net.Tl
				} else {
					st.Span("p2p.fetch", string(netmodel.CompTp2p), lat-e.net.Tl)
					return netmodel.SrcP2P, lat + extra
				}
			} else {
				st.Span("p2p.fetch", string(netmodel.CompTp2p), lat-e.net.Tl)
				return netmodel.SrcP2P, lat + extra
			}
		} else {
			// False positive (Bloom aliasing, poisoning, or object lost
			// to churn): repair the directory and fall through.  The
			// wasted LAN lookup is charged on top of wherever the object
			// is finally found.
			px.dir.Remove(obj)
			px.dirFP.Inc()
			st.WastedSpan("dir.false_positive", string(netmodel.CompTp2p), e.net.Tp2p)
			extra += e.net.Tp2p
		}
	}

	// 3. Cooperating proxies: their proxy caches first, then their P2P
	//    client caches via push (§4.5).  With digests enabled, a peer
	//    is only probed when its (possibly stale) digest endorses the
	//    object; a wasted probe costs an extra Tc round trip.
	src := netmodel.SrcServer
	for q := 1; q < len(e.proxies); q++ {
		peer := e.proxies[(proxy+q)%len(e.proxies)]
		if peer.digest != nil && !peer.digest.mayContain(obj) {
			continue
		}
		if peer.cache.Access(obj) {
			st.Span("peer.fetch", string(netmodel.CompTc), e.net.Tc)
			src = netmodel.SrcRemoteProxy
			break
		}
		if peer.dir.MayContain(obj) {
			lr, err := peer.cluster.PushFetch(obj)
			if err == nil {
				peer.acct.RecordLookup(obj, lr)
			}
			if err == nil && lr.Found {
				for _, gone := range lr.Displaced {
					peer.dir.Remove(gone) // replica displacement receipts
				}
				st.Span("peer.push", string(netmodel.CompTc), e.net.Tc)
				src = netmodel.SrcRemoteProxy
				break
			}
			// Wasted probe into the peer's P2P client cache: the peer
			// proxy paid a Tp2p round trip before reporting the miss.
			peer.dir.Remove(obj)
			peer.dirFP.Inc()
			st.WastedSpan("peer.dir.false_positive", string(netmodel.CompTp2p), e.net.Tp2p)
			extra += e.net.Tp2p
		}
		if peer.digest != nil {
			e.staleProbes.Inc()
			st.WastedSpan("peer.probe.stale", string(netmodel.CompTc), e.net.Tc)
			extra += e.net.Tc
		}
	}
	if src == netmodel.SrcServer {
		st.Span("origin.fetch", string(netmodel.CompTs), e.net.Ts)
	}

	// 4. Fetch and cache at the proxy; greedy-dual cost is the fetch
	//    latency actually paid.  Evictions pass down into the P2P
	//    client cache (§3, Figure 1), piggybacked on the HTTP response
	//    to the requesting client (§4.4).
	cost := e.net.FetchCost(src)
	evicted := px.cache.Add(entryFor(obj, size, cost))
	px.evictions.Add(int64(len(evicted)))
	for _, ev := range evicted {
		r, err := px.cluster.StoreEvicted(ev, member, !e.cfg.DisablePiggyback)
		if err != nil {
			continue // cluster fully failed: the object is dropped
		}
		px.acct.RecordStore(r)
		if r.StoredOK {
			px.dir.Add(r.Stored)
		}
		for _, gone := range r.Evicted {
			px.dir.Remove(gone)
		}
	}
	return src, e.net.Latency(src) + extra
}

// maintain rebuilds inter-proxy digests and injects client-cache
// failures (and optional replacements) on their respective periods,
// plus the chaos scenarios: the flash-churn storm, directory
// poisoning, and the periodic directory sweep that defends against it.
func (e *hierGDEngine) maintain(reqIdx int, res *Result) {
	if e.cfg.DigestInterval > 0 && reqIdx > 0 && reqIdx%e.cfg.DigestInterval == 0 {
		res.MaintenanceTicks++
		for _, px := range e.proxies {
			px.digest.rebuild()
		}
	}
	if e.cfg.FlashChurnAt > 0 && reqIdx == e.cfg.FlashChurnAt {
		res.MaintenanceTicks++
		e.flashChurn(res)
	}
	if e.cfg.PoisonEvery > 0 && reqIdx > 0 && reqIdx%e.cfg.PoisonEvery == 0 {
		res.MaintenanceTicks++
		e.poisonDirectories()
	}
	if e.cfg.DirSweepEvery > 0 && reqIdx > 0 && reqIdx%e.cfg.DirSweepEvery == 0 {
		res.MaintenanceTicks++
		e.sweepDirectories()
	}
	if e.cfg.FailEvery <= 0 || reqIdx == 0 || reqIdx%e.cfg.FailEvery != 0 {
		return
	}
	res.MaintenanceTicks++
	p := e.rng.Intn(len(e.proxies))
	px := e.proxies[p]
	if px.cluster.LiveClients() <= 1 {
		return
	}
	// Pick a random live client.
	for attempts := 0; attempts < 100; attempts++ {
		i := e.rng.Intn(e.cfg.P2PClientCaches)
		if px.cluster.IsDead(i) {
			continue
		}
		lost, err := px.cluster.FailClient(i)
		if err != nil {
			continue
		}
		px.acct.RecordFailure(lost)
		for _, obj := range lost {
			px.dir.Remove(obj)
		}
		e.failed++
		res.FailedClients++
		if e.cfg.ReplaceFailed {
			px.cluster.JoinClient()
		}
		return
	}
}

// flashChurn fails FlashChurnFraction of every cluster's live clients
// at once — the mass-disconnect storm.  Victims are the lowest-index
// live clients (deterministic: no rng draw, so enabling the scenario
// does not perturb FailEvery's stream).  At least one client per
// cluster survives.
func (e *hierGDEngine) flashChurn(res *Result) {
	for _, px := range e.proxies {
		kill := int(float64(px.cluster.LiveClients()) * e.cfg.FlashChurnFraction)
		for i := 0; i < e.cfg.P2PClientCaches && kill > 0; i++ {
			if px.cluster.LiveClients() <= 1 {
				break
			}
			if px.cluster.IsDead(i) {
				continue
			}
			lost, err := px.cluster.FailClient(i)
			if err != nil {
				continue
			}
			px.acct.RecordFailure(lost)
			for _, obj := range lost {
				px.dir.Remove(obj)
			}
			kill--
			e.failed++
			e.flashChurned++
			res.FailedClients++
		}
	}
}

// poisonDirectories injects PoisonBatch bogus entries per round into a
// random proxy's directory: recently requested objects the cluster
// does not hold, so Zipf re-requests pay the wasted Tp2p probe before
// the serve path repairs the entry.
func (e *hierGDEngine) poisonDirectories() {
	if len(e.recent) == 0 {
		return
	}
	px := e.proxies[e.rng.Intn(len(e.proxies))]
	for n := 0; n < e.cfg.PoisonBatch; n++ {
		obj := e.recent[e.rng.Intn(len(e.recent))]
		if !px.cluster.Contains(obj) && !px.dir.MayContain(obj) {
			px.dir.Add(obj)
			e.poisonInjected++
		}
	}
}

// sweepDirectories is the poisoning defense: drop every directory
// entry the cluster cannot back (ground-truth audit, the simulator
// stand-in for the live proxy's receipt-fed repair).
func (e *hierGDEngine) sweepDirectories() {
	for _, px := range e.proxies {
		for _, obj := range px.dir.Objects() {
			if !px.cluster.Contains(obj) {
				px.dir.Remove(obj)
				e.poisonSwept++
			}
		}
	}
}

func (e *hierGDEngine) finish(res *Result) {
	// Unswept poison at end of run would trip the strict directory
	// reconciliation (by design: the oracle is exact); a final sweep is
	// part of the scenario's defense contract.
	if e.cfg.PoisonEvery > 0 {
		e.sweepDirectories()
	}
	res.FlashChurned += e.flashChurned
	res.PoisonInjected += e.poisonInjected
	res.PoisonSwept += e.poisonSwept
	res.ByzantineServes += e.byzantineServes
	res.ByzantineDetected += e.byzantineDetected
	res.DigestStaleProbes += int(e.staleProbes.Value())
	if chk := e.cfg.Check; chk != nil {
		for p, px := range e.proxies {
			// The ring may carry lazily-unrepaired state after churn;
			// one maintenance round puts it in the stable state the ring
			// oracle is specified against.
			px.cluster.Overlay().Stabilize()
			invariant.CheckRing(chk, px.cluster.Overlay(), 32)
			px.acct.Reconcile(px.cluster)
			if px.acct.Strict() {
				invariant.ReconcileDirectory(chk, fmt.Sprintf("proxy%d", p), px.dir,
					px.cluster.Contains, px.acct.Resident())
			}
		}
	}
	for _, px := range e.proxies {
		res.addP2P(px.cluster.Stats())
		if lb := px.cluster.LoadBalance(); lb.MaxServes > res.P2PMaxNodeServes {
			res.P2PMaxNodeServes = lb.MaxServes
		}
		res.ProxyEvictions += int(px.evictions.Value())
		res.DirectoryFalsePositives += int(px.dirFP.Value())
		res.DirectoryMemoryBytes += px.dir.MemoryBytes()
		if px.digest != nil {
			res.DigestMemoryBytes += px.digest.memoryBytes()
			res.DigestRebuilds += px.digest.rebuilds
		}
	}
}
