package sim

import (
	"webcache/internal/cache"
	"webcache/internal/trace"
)

// arena is the per-run scratch pool for the short-lived records the
// request hot path produces: eviction receipts and their object-id
// projections.  Every engine owns one arena per run; buffers handed
// out are valid until the next call that hands out the same buffer,
// mirroring the cache.Policy.Add scratch contract.  Consumers
// (invariant accountants, directory updates) read receipts
// synchronously, so nothing on the hot path needs a fresh allocation
// once the buffers have grown to the run's high-water mark.
type arena struct {
	ids     []trace.ObjectID
	entries []cache.Entry
}

// idBuf returns the reusable object-id buffer, emptied.
func (a *arena) idBuf() []trace.ObjectID { return a.ids[:0] }

// keepIDs records the grown buffer so the capacity is reused.
func (a *arena) keepIDs(ids []trace.ObjectID) []trace.ObjectID {
	a.ids = ids
	return ids
}

// entryBuf returns the reusable entry buffer, emptied.
func (a *arena) entryBuf() []cache.Entry { return a.entries[:0] }

// keepEntries records the grown buffer so the capacity is reused.
func (a *arena) keepEntries(es []cache.Entry) []cache.Entry {
	a.entries = es
	return es
}

// evictedIDs projects eviction receipts down to object ids using the
// arena's buffer; the result is valid until the next evictedIDs call
// on the same arena (the accountants consume it synchronously).
func (a *arena) evictedIDs(evicted []cache.Entry) []trace.ObjectID {
	if len(evicted) == 0 {
		return nil
	}
	ids := a.idBuf()
	for _, ev := range evicted {
		ids = append(ids, ev.Obj)
	}
	return a.keepIDs(ids)
}
