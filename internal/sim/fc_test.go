package sim

import (
	"testing"

	"webcache/internal/netmodel"
)

// The oracle (default) FC is an upper bound; the trailing variant is
// the implementable form and must be weaker or equal.
func TestFCTrailingWeakerThanOracle(t *testing.T) {
	tr := testTrace(t, 30)
	for _, s := range []Scheme{FC, FCEC} {
		oracle := run(t, tr, Config{Scheme: s, ProxyCacheFrac: 0.2, Seed: 1})
		trailing := run(t, tr, Config{Scheme: s, ProxyCacheFrac: 0.2, FCTrailing: true, Seed: 1})
		if trailing.AvgLatency < oracle.AvgLatency {
			t.Errorf("%v: trailing (%.4f) beat the oracle (%.4f)", s, trailing.AvgLatency, oracle.AvgLatency)
		}
	}
}

// A smaller re-placement window adapts faster and cannot hurt the
// oracle variant on a temporally local workload.
func TestFCWindowSizeEffect(t *testing.T) {
	tr := testTrace(t, 31)
	small := run(t, tr, Config{Scheme: FC, ProxyCacheFrac: 0.2, FCWindow: 2_000, Seed: 1})
	large := run(t, tr, Config{Scheme: FC, ProxyCacheFrac: 0.2, FCWindow: 60_000, Seed: 1})
	if small.AvgLatency > large.AvgLatency*1.02 {
		t.Errorf("smaller oracle window hurt: %.4f vs %.4f", small.AvgLatency, large.AvgLatency)
	}
}

// The trailing (implementable) variant documents *why* the paper's FC
// needs perfect frequency knowledge: placements computed from the past
// miss every object introduced in the current window, and under the
// workload's temporal locality those fresh objects carry enough of the
// traffic that trailing FC can even lose to plain NC.  The oracle
// stays comfortably ahead on the same trace.
func TestFCTrailingSuffersUnderDrift(t *testing.T) {
	tr := testTrace(t, 32)
	nc := run(t, tr, Config{Scheme: NC, ProxyCacheFrac: 0.5, Seed: 1})
	trailing := run(t, tr, Config{Scheme: FC, ProxyCacheFrac: 0.5, FCTrailing: true, Seed: 1})
	oracle := run(t, tr, Config{Scheme: FC, ProxyCacheFrac: 0.5, Seed: 1})
	gTrail := netmodel.Gain(trailing.AvgLatency, nc.AvgLatency)
	gOracle := netmodel.Gain(oracle.AvgLatency, nc.AvgLatency)
	if gOracle <= 0.3 {
		t.Errorf("oracle FC gain %.3f unexpectedly small", gOracle)
	}
	if gOracle-gTrail < 0.2 {
		t.Errorf("perfect knowledge worth only %.3f (oracle %.3f, trailing %.3f) - drift sensitivity vanished",
			gOracle-gTrail, gOracle, gTrail)
	}
	// Sanity: trailing FC is degraded, not broken.
	if gTrail < -0.5 {
		t.Errorf("trailing FC gain %.3f pathologically bad", gTrail)
	}
}
