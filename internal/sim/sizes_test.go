package sim

import (
	"testing"

	"webcache/internal/cache"
	"webcache/internal/netmodel"
	"webcache/internal/prowgen"
	"webcache/internal/trace"
)

// variableSizeTrace generates a workload with the lognormal/Pareto
// size model — the extension beyond the paper's unit-size assumption.
func variableSizeTrace(t testing.TB) *trace.Trace {
	t.Helper()
	tr, err := prowgen.Generate(prowgen.Config{
		NumRequests:   60_000,
		NumObjects:    2_000,
		NumClients:    200,
		VariableSizes: true,
		Seed:          31,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestAllSchemesRunWithVariableSizes(t *testing.T) {
	tr := variableSizeTrace(t)
	nc := run(t, tr, Config{Scheme: NC, ProxyCacheFrac: 0.2, Seed: 1})
	for _, s := range AllSchemes() {
		res := run(t, tr, Config{Scheme: s, ProxyCacheFrac: 0.2, Seed: 1})
		sum := 0
		for _, n := range res.Sources {
			sum += n
		}
		if sum != tr.Len() {
			t.Errorf("%v: conservation broken (%d vs %d)", s, sum, tr.Len())
		}
		if s != NC {
			if g := netmodel.Gain(res.AvgLatency, nc.AvgLatency); g <= 0 {
				t.Errorf("%v: non-positive gain %.3f with variable sizes", s, g)
			}
		}
	}
}

func TestVariableSizesInfiniteCacheInUnits(t *testing.T) {
	tr := variableSizeTrace(t)
	cfg := Config{Scheme: NC, ProxyCacheFrac: 0.2, Seed: 1}
	cfg.fillDefaults()
	sz := computeSizing(tr, cfg)
	// With multi-KB objects the unit count must far exceed the object
	// count.
	st := trace.Analyze(tr)
	for p, n := range sz.infinite {
		if n <= st.MultiAccessed {
			t.Errorf("cluster %d: infinite units %d <= multi-accessed objects %d", p, n, st.MultiAccessed)
		}
	}
}

func TestPlacementWithSizesRespectsUnits(t *testing.T) {
	in := cache.PlacementInput{
		Freq: [][]float64{{100, 90, 80, 70}},
		Tiers: []cache.Tier{
			{Proxy: 0, Capacity: 10, HitLatency: 0.05},
		},
		ServerLatency: 1,
		RemoteLatency: 0.1,
		Cooperative:   false,
		Sizes:         []uint32{8, 4, 4, 2},
	}
	pl, err := cache.ComputePlacement(in)
	if err != nil {
		t.Fatal(err)
	}
	used := 0
	for o := range pl.ByProxy[0] {
		used += int(in.Sizes[o])
	}
	if used > 10 {
		t.Fatalf("placement used %d units of 10", used)
	}
	// Density favours the small objects: 90/4, 80/4 and 70/2 beat
	// 100/8, so objects 1,2,3 (10 units) should fill the tier.
	for _, o := range []trace.ObjectID{1, 2, 3} {
		if _, ok := pl.ByProxy[0][o]; !ok {
			t.Errorf("dense object %d not placed", o)
		}
	}
	if _, ok := pl.ByProxy[0][0]; ok {
		t.Error("bulky object 0 placed over denser set")
	}
}

func TestPlacementOversizeObjectSkipped(t *testing.T) {
	in := cache.PlacementInput{
		Freq:          [][]float64{{1000}},
		Tiers:         []cache.Tier{{Proxy: 0, Capacity: 4, HitLatency: 0.05}},
		ServerLatency: 1,
		RemoteLatency: 0.1,
		Sizes:         []uint32{100},
	}
	pl, err := cache.ComputePlacement(in)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Anywhere(0) {
		t.Error("object larger than the tier placed anyway")
	}
}

func TestPlacementSizesValidation(t *testing.T) {
	in := cache.PlacementInput{
		Freq:          [][]float64{{1, 2}},
		Tiers:         []cache.Tier{{Proxy: 0, Capacity: 4, HitLatency: 0.05}},
		ServerLatency: 1,
		RemoteLatency: 0.1,
		Sizes:         []uint32{1}, // wrong length
	}
	if _, err := cache.ComputePlacement(in); err == nil {
		t.Error("mismatched sizes accepted")
	}
}
