package sim

import (
	"testing"

	"webcache/internal/invariant"
)

// TestCheckedRunAllSchemes replays a ProWGen trace under every scheme
// (plus the Squirrel baseline) with the invariant subsystem wired in
// and requires zero violations — the end-to-end guarantee that the
// simulator's accounting is internally consistent.
func TestCheckedRunAllSchemes(t *testing.T) {
	tr := testTrace(t, 1)
	schemes := append(AllSchemes(), Squirrel)
	for _, s := range schemes {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			chk := invariant.New(nil)
			res := run(t, tr, Config{
				Scheme:            s,
				ProxyCacheFrac:    0.3,
				ClientsPerCluster: 16,
				Seed:              1,
				Check:             chk,
			})
			if err := chk.Err(); err != nil {
				t.Fatal(err)
			}
			// FC/FC-EC are stateless placement engines: there is no
			// mutable cache state for the oracles to shadow.
			stateless := s == FC || s == FCEC
			if !stateless && res.InvariantChecks == 0 {
				t.Fatal("checking was wired in but no checks ran")
			}
			if res.InvariantViolations != 0 {
				t.Fatalf("Result reports %d violations, Checker reported none", res.InvariantViolations)
			}
		})
	}
}

// TestCheckedRunHierGDVariants stresses the Hier-GD oracles under the
// configurations that bend the receipts flow: Bloom directories (false
// positives), stale digests, client-cache churn with and without
// replacement, hot-object replication, GDSF proxies, and the ablation
// switches.
func TestCheckedRunHierGDVariants(t *testing.T) {
	tr := testTrace(t, 1)
	variants := map[string]Config{
		"bloom":           {Directory: DirBloom},
		"digests":         {DigestInterval: 5_000},
		"churn":           {FailEvery: 9_000},
		"churn-replace":   {FailEvery: 9_000, ReplaceFailed: true},
		"replication":     {ReplicateHotAfter: 50},
		"gdsf":            {ProxyGDSF: true},
		"no-piggyback":    {DisablePiggyback: true},
		"no-diversion":    {DisableDiversion: true},
		"bloom-churn":     {Directory: DirBloom, FailEvery: 9_000},
		"kitchen-sink":    {Directory: DirBloom, DigestInterval: 5_000, FailEvery: 9_000, ReplaceFailed: true, ReplicateHotAfter: 50},
		"four-proxies":    {NumProxies: 4},
		"warmup-excluded": {WarmupRequests: 10_000},
	}
	for name, cfg := range variants {
		name, cfg := name, cfg
		t.Run(name, func(t *testing.T) {
			chk := invariant.New(nil)
			cfg.Scheme = HierGD
			cfg.ProxyCacheFrac = 0.3
			cfg.ClientsPerCluster = 16
			cfg.Seed = 1
			cfg.Check = chk
			run(t, tr, cfg)
			if err := chk.Err(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCheckedRunMatchesUnchecked pins the zero-interference guarantee:
// wiring the invariant subsystem in must not change a single simulated
// outcome, only observe it.
func TestCheckedRunMatchesUnchecked(t *testing.T) {
	tr := testTrace(t, 1)
	for _, s := range []Scheme{SCEC, HierGD, Squirrel} {
		base := Config{Scheme: s, ProxyCacheFrac: 0.3, ClientsPerCluster: 16, Seed: 1}
		plain := run(t, tr, base)
		checked := base
		checked.Check = invariant.New(nil)
		got := run(t, tr, checked)
		if got.AvgLatency != plain.AvgLatency || got.Sources != plain.Sources {
			t.Fatalf("%v: checked run diverged: latency %v vs %v, sources %v vs %v",
				s, got.AvgLatency, plain.AvgLatency, got.Sources, plain.Sources)
		}
		if err := checked.Check.Err(); err != nil {
			t.Fatal(err)
		}
	}
}
