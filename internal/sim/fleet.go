package sim

import (
	"fmt"

	"webcache/internal/cache"
	"webcache/internal/fleet"
	"webcache/internal/invariant"
	"webcache/internal/netmodel"
	"webcache/internal/obs"
	"webcache/internal/p2p"
	"webcache/internal/trace"
)

// fleetEngine simulates the cooperating proxy fleet (DESIGN.md §12):
// FleetSize proxy caches partitioned by a consistent-hash ring, with
// k-way replication of hot objects.  There is no P2P client tier —
// the fleet variant isolates the proxy-tier scaling question that
// `make fleet-bench` measures live:
//
//   - a request lands at its cluster's front proxy; a local hit means
//     the front owns the key or holds a hot replica of it;
//   - a front miss routes the request to the key's owner (the first
//     reachable ring candidate), which serves from its cache or fills
//     from origin on the front's behalf — the front never caches keys
//     it does not own, so each object has one home plus replicas;
//   - candidates crossing FleetHotAfter accesses push copies to the
//     other k−1 replica members (load-spread: those fronts then serve
//     the object locally);
//   - FleetPartitionAt isolates the highest-indexed member mid-run:
//     routing skips it (the live breaker analogue) and requests it
//     fronts pass through to origin uncached.
//
// With Config.Check set, a fleet-level ClusterAccountant tracks every
// store, replica placement, and eviction receipt; finish reconciles
// the replica ledger against a ground-truth scan of all member caches
// (ReconcileCopies).  A partitioned run downgrades to the ledger
// identity only: copies stranded on the isolated member make strict
// per-object counts unknowable, like churn does for Hier-GD.
type fleetEngine struct {
	cfg Config
	net netmodel.Model

	ring    *fleet.Ring
	members []*fleetMember
	idx     map[string]int // member name -> index
	loads   *fleet.LoadTracker
	acct    *invariant.ClusterAccountant
	// checking gates the eviction-receipt projection (evictedIDs
	// allocates) so unchecked runs skip ledger bookkeeping entirely.
	checking bool
	// cands memoizes each object's ring candidates as member indices:
	// the ring is immutable for the whole run, so ReplicasOf (which
	// allocates a []string and hashes per call) runs once per object
	// instead of once per request.
	cands map[trace.ObjectID][]int
	// ar holds the run's receipt-projection scratch (see arena.go).
	ar arena

	partitioned bool // FleetPartitionAt reached
	victim      int  // member isolated by the partition

	routed, routedHits, routedOrigin int
	routeFailed, routeSkipped        int
	replicasPlaced                   int
}

type fleetMember struct {
	name      string
	cache     cache.Policy
	evictions obs.Counter
}

func newFleetEngine(cfg Config, sz sizing) (*fleetEngine, error) {
	e := &fleetEngine{
		cfg:    cfg,
		net:    cfg.Net,
		loads:  fleet.NewLoadTracker(0),
		idx:    make(map[string]int, cfg.FleetSize),
		victim: cfg.FleetSize - 1,
	}
	names := make([]string, cfg.FleetSize)
	for p := 0; p < cfg.FleetSize; p++ {
		name := fmt.Sprintf("fleet%d", p)
		names[p] = name
		e.idx[name] = p
		var c cache.Policy = cache.NewGreedyDual(sz.proxyCap[p])
		if cfg.ProxyGDSF {
			c = cache.NewGDSF(sz.proxyCap[p])
		}
		e.members = append(e.members, &fleetMember{
			name:  name,
			cache: invariant.WrapPolicy(c, cfg.Check, name+".cache"),
		})
	}
	e.ring = fleet.NewRingOf(fleet.DefaultVirtualNodes, names)
	e.cands = make(map[trace.ObjectID][]int)
	e.acct = invariant.NewClusterAccountant(cfg.Check, "fleet")
	e.checking = cfg.Check != nil
	if cfg.FleetPartitionAt > 0 {
		// Copies stranded on the isolated member keep serving its own
		// fronted clients but cannot be receipted across the cut, so
		// only the ledger identity stays checkable.
		e.acct.Lenient()
	}
	return e, nil
}

// cut reports whether member i is on the wrong side of the partition.
func (e *fleetEngine) cut(i int) bool { return e.partitioned && i == e.victim }

// candidates returns obj's replica candidates as member indices,
// memoized for the run (the ring never changes after construction).
func (e *fleetEngine) candidates(obj trace.ObjectID) []int {
	if c, ok := e.cands[obj]; ok {
		return c
	}
	names := e.ring.ReplicasOf(obj, e.cfg.FleetReplication)
	c := make([]int, len(names))
	for i, name := range names {
		c[i] = e.idx[name]
	}
	e.cands[obj] = c
	return c
}

func (e *fleetEngine) serve(obj trace.ObjectID, size uint32, proxy, _ int, st *obs.SpanTrace) (netmodel.Source, float64) {
	front := e.members[proxy]

	// 1. Front-local hit: the front owns the key, holds a hot replica,
	//    or is serving its own origin fill back.
	if front.cache.Access(obj) {
		st.Span("proxy.cache", string(netmodel.CompTl), e.net.Tl)
		return netmodel.SrcLocalProxy, e.net.Latency(netmodel.SrcLocalProxy)
	}
	st.Span("proxy.cache", string(netmodel.CompTl), e.net.Tl)

	cands := e.candidates(obj)

	// 2. The front is itself a candidate: fill from origin and keep the
	//    copy — this is the only way keys enter a member's cache on the
	//    request path (the front never caches keys it does not own).
	for _, i := range cands {
		if i == proxy {
			e.insertAt(proxy, obj, size)
			e.touch(proxy, obj, size)
			st.Span("origin.fetch", string(netmodel.CompTs), e.net.Ts)
			return netmodel.SrcServer, e.net.Latency(netmodel.SrcServer)
		}
	}

	// 3. Route to the first reachable candidate (owner first —
	//    deterministic, so without a partition every key has exactly
	//    one home and the strict replica ledger stays exact).
	target := -1
	if !e.cut(proxy) { // a partitioned front cannot reach anyone
		for _, i := range cands {
			if e.cut(i) {
				e.routeSkipped++
				continue
			}
			target = i
			break
		}
	}
	if target < 0 {
		// Fleet unreachable: pass through to origin without caching —
		// the front is not an owner, so keeping the copy would break
		// the one-home discipline.
		e.routeFailed++
		st.Span("origin.fetch", string(netmodel.CompTs), e.net.Ts)
		return netmodel.SrcServer, e.net.Latency(netmodel.SrcServer)
	}
	e.routed++
	tm := e.members[target]
	if tm.cache.Access(obj) {
		e.routedHits++
		e.touch(target, obj, size)
		st.Span("fleet.route", string(netmodel.CompTc), e.net.Tc)
		return netmodel.SrcRemoteProxy, e.net.Latency(netmodel.SrcRemoteProxy)
	}

	// 4. Owner-side origin fill on the front's behalf: the owner keeps
	//    the copy, the front pays the extra Tc hop on top of the
	//    origin fetch.
	e.routedOrigin++
	e.insertAt(target, obj, size)
	e.touch(target, obj, size)
	st.Span("fleet.route", string(netmodel.CompTc), e.net.Tc)
	st.Span("origin.fetch", string(netmodel.CompTs), e.net.Ts)
	return netmodel.SrcServer, e.net.Latency(netmodel.SrcServer) + e.net.Tc
}

// insertAt caches an origin fill at member i and feeds the receipt
// (including displaced objects) into the fleet ledger.  Copies only
// ever live on ring candidates, so scanning the other candidates
// classifies the insert exactly: a first copy is a primary store, any
// further one is a replica placement (two replica members can each
// origin-fill the same key for their own fronted clients, and the
// owner can re-fill a key whose primary it evicted while a hot copy
// survives elsewhere).
func (e *fleetEngine) insertAt(i int, obj trace.ObjectID, size uint32) {
	copyExists := false
	for _, j := range e.candidates(obj) {
		if j != i && e.members[j].cache.Contains(obj) {
			copyExists = true
			break
		}
	}
	m := e.members[i]
	evicted := m.cache.Add(entryFor(obj, size, e.net.FetchCost(netmodel.SrcServer)))
	m.evictions.Add(int64(len(evicted)))
	if !e.checking {
		return
	}
	if copyExists {
		e.acct.RecordReplica(obj, e.ar.evictedIDs(evicted))
	} else {
		e.acct.RecordStore(p2p.Receipt{Stored: obj, StoredOK: true, Evicted: e.ar.evictedIDs(evicted)})
	}
}

// touch records an access against the per-key load estimate at a
// candidate member and replicates the object out to the other replica
// members each time it crosses a FleetHotAfter multiple.
func (e *fleetEngine) touch(holder int, obj trace.ObjectID, size uint32) {
	if e.cfg.FleetReplication < 2 {
		return
	}
	n := e.loads.Touch(obj)
	if n < uint32(e.cfg.FleetHotAfter) || n%uint32(e.cfg.FleetHotAfter) != 0 {
		return
	}
	for _, i := range e.candidates(obj) {
		if i == holder || e.cut(i) || e.cut(holder) {
			continue
		}
		m := e.members[i]
		if m.cache.Contains(obj) {
			continue
		}
		// Replicas arrive over the Tc hop, so that is their re-fetch
		// cost under greedy-dual.
		evicted := m.cache.Add(entryFor(obj, size, e.net.FetchCost(netmodel.SrcRemoteProxy)))
		m.evictions.Add(int64(len(evicted)))
		if e.checking {
			e.acct.RecordReplica(obj, e.ar.evictedIDs(evicted))
		}
		e.replicasPlaced++
	}
}

// maintain trips the partition at its configured request index.
func (e *fleetEngine) maintain(reqIdx int, res *Result) {
	if e.cfg.FleetPartitionAt > 0 && reqIdx == e.cfg.FleetPartitionAt && !e.partitioned {
		e.partitioned = true
		res.MaintenanceTicks++
	}
}

func (e *fleetEngine) finish(res *Result) {
	res.FleetMembers = len(e.members)
	res.FleetRouted = e.routed
	res.FleetRoutedHits = e.routedHits
	res.FleetRoutedOrigin = e.routedOrigin
	res.FleetRouteFailed = e.routeFailed
	res.FleetRouteSkipped = e.routeSkipped
	res.FleetReplicas = e.replicasPlaced
	res.FleetHotKeys = e.loads.Len()
	for _, m := range e.members {
		res.ProxyEvictions += int(m.evictions.Value())
	}
	if e.cfg.Check == nil {
		return
	}
	// Ground truth for the replica ledger: how many copies of each
	// object are actually resident across the fleet.
	ground := make(map[trace.ObjectID]int64)
	for _, m := range e.members {
		for _, obj := range m.cache.Objects() {
			ground[obj]++
		}
	}
	e.acct.ReconcileCopies(ground)
}
