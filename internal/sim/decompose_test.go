package sim

import (
	"math"
	"strings"
	"testing"

	"webcache/internal/netmodel"
	"webcache/internal/obs"
	"webcache/internal/prowgen"
)

// traceRun replays a small workload under one scheme with every
// request sampled and returns the tracer.
func traceRun(t *testing.T, scheme Scheme, mutate func(*Config)) (*obs.Tracer, *Result) {
	t.Helper()
	tr, err := prowgen.Generate(prowgen.Config{
		NumRequests: 30_000, NumObjects: 1_000, NumClients: 200, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	tracer := obs.NewTracer(obs.TracerOptions{Origin: "sim", SampleEvery: 1, Limit: 40_000})
	cfg := Config{Scheme: scheme, ProxyCacheFrac: 0.1, Seed: 7, Tracer: tracer}
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tracer, res
}

// The tentpole acceptance check: for each of the paper's seven
// schemes, the span-derived per-tier latency decomposition must agree
// with the analytic model exactly (the spans are the latency — any
// drift is an accounting bug in an engine).
func TestDecompositionMatchesAnalyticModel(t *testing.T) {
	for _, scheme := range AllSchemes() {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			tracer, res := traceRun(t, scheme, nil)
			if tracer.Len() == 0 {
				t.Fatal("no traces sampled")
			}
			d := tracer.Decompose()
			m := netmodel.Default()
			rep := CheckDecomposition(m, d, 1e-9)
			if !rep.Within {
				t.Fatalf("decomposition off the analytic model:\n%s", rep.Table())
			}
			if len(rep.Rows) == 0 {
				t.Fatal("no tiers in the decomposition")
			}
			// Every request is sampled: tier request counts must cover the
			// whole replay (warmup included — warmed requests are traced
			// too, they are just not in Result.Requests).
			total := 0
			for _, row := range rep.Rows {
				total += row.Requests
			}
			if total != tracer.Len() {
				t.Fatalf("decomposition covers %d requests, tracer holds %d", total, tracer.Len())
			}
			if res.Requests == 0 {
				t.Fatal("empty result")
			}
		})
	}
}

// Spans must also sum to the total charged latency per trace — wasted
// probes included — so the sum over all sampled traces reproduces the
// replay's aggregate latency.
func TestSpanTotalsReproduceAggregateLatency(t *testing.T) {
	tracer, _ := traceRun(t, HierGD, func(cfg *Config) {
		// Digests plus Bloom directories maximize wasted-probe paths.
		cfg.DigestInterval = 2_000
		cfg.Directory = DirBloom
	})
	d := tracer.Decompose()
	var spanSum, totalSum float64
	for _, td := range d.Tiers {
		spanSum += td.SpanTotal
		totalSum += td.Total
	}
	if math.Abs(spanSum-totalSum) > 1e-6 {
		t.Fatalf("span durations sum to %g, charged latency sums to %g", spanSum, totalSum)
	}
}

// Squirrel is the documented deviation: no proxy tier, so both its
// tiers sit exactly Tl below the analytic end-to-end model.
func TestSquirrelDecompositionDeviatesByTl(t *testing.T) {
	tracer, _ := traceRun(t, Squirrel, nil)
	m := netmodel.Default()
	rep := CheckDecomposition(m, tracer.Decompose(), 1e-9)
	if rep.Within {
		t.Fatal("Squirrel unexpectedly matches the proxied model")
	}
	for _, row := range rep.Rows {
		if math.Abs(row.Delta-(-m.Tl)) > 1e-9 {
			t.Fatalf("tier %s delta = %g, want -Tl = %g:\n%s", row.Tier, row.Delta, -m.Tl, rep.Table())
		}
	}
}

// A sampled sim run must emit Chrome trace-event JSON that passes the
// schema validator (the Perfetto-loadable export in the acceptance
// criteria), and JSONL with one object per trace.
func TestSimTraceExportsValidate(t *testing.T) {
	tr, err := prowgen.Generate(prowgen.Config{
		NumRequests: 30_000, NumObjects: 1_000, NumClients: 200, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	tc := obs.NewTracer(obs.TracerOptions{Origin: "sim", SampleEvery: 100})
	if _, err := Run(tr, Config{Scheme: HierGD, ProxyCacheFrac: 0.1, Seed: 3, Tracer: tc}); err != nil {
		t.Fatal(err)
	}
	if tc.Len() != 300 {
		t.Fatalf("sampled %d traces, want 300 (30000 / 100)", tc.Len())
	}

	var chrome strings.Builder
	if err := tc.WriteChrome(&chrome); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace([]byte(chrome.String())); err != nil {
		t.Fatalf("chrome export invalid: %v", err)
	}

	var jsonl strings.Builder
	if err := tc.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(jsonl.String()), "\n")
	if len(lines) != 300 {
		t.Fatalf("JSONL has %d lines, want 300", len(lines))
	}

	rep := CheckDecomposition(netmodel.Default(), tc.Decompose(), 1e-9)
	if !rep.Within {
		t.Fatalf("sampled decomposition off the model:\n%s", rep.Table())
	}
	if !strings.Contains(rep.Table(), "tier") {
		t.Fatal("table missing header")
	}
}
