package sim

import (
	"testing"

	"webcache/internal/invariant"
)

// chaosBase is the Hier-GD configuration the chaos-knob tests perturb.
func chaosBase(chk *invariant.Checker) Config {
	return Config{
		Scheme:            HierGD,
		NumProxies:        2,
		ClientsPerCluster: 16,
		P2PClientCaches:   4,
		ProxyCacheFrac:    0.05,
		ClientCacheFrac:   0.005,
		Seed:              1,
		Check:             chk,
	}
}

// TestChaosFlashChurn pins the mass-churn knob: a mid-run flash
// disconnect fails the configured fraction of daemons, the engine
// keeps serving, and the full invariant subsystem stays clean.
func TestChaosFlashChurn(t *testing.T) {
	tr := testTrace(t, 1)
	chk := invariant.New(nil)
	cfg := chaosBase(chk)
	cfg.FlashChurnAt = tr.Len() / 2
	cfg.FlashChurnFraction = 0.5
	res := run(t, tr, cfg)
	if err := chk.Err(); err != nil {
		t.Fatal(err)
	}
	if res.FlashChurned == 0 {
		t.Fatal("flash churn configured but no clients failed")
	}
	// 2 proxies x 4 caches, half churned, at least one survivor kept
	// per proxy: between 2 and 6 victims.
	if res.FlashChurned < 2 || res.FlashChurned > 6 {
		t.Fatalf("flash churned %d daemons, want 2..6", res.FlashChurned)
	}
	if res.InvariantViolations != 0 {
		t.Fatalf("%d invariant violations under flash churn", res.InvariantViolations)
	}
}

// TestChaosPoisonAndSweep pins the directory-poisoning knob and its
// defense: bogus entries are injected, the periodic sweep removes
// them, and conservation holds throughout (the poison entries live in
// the directory only — no cache state backs them, which is exactly
// what the sweep detects).
func TestChaosPoisonAndSweep(t *testing.T) {
	tr := testTrace(t, 1)
	chk := invariant.New(nil)
	cfg := chaosBase(chk)
	cfg.PoisonEvery = 500
	cfg.PoisonBatch = 8
	cfg.DirSweepEvery = 250
	res := run(t, tr, cfg)
	if err := chk.Err(); err != nil {
		t.Fatal(err)
	}
	if res.PoisonInjected == 0 {
		t.Fatal("poisoning configured but nothing injected")
	}
	if res.PoisonSwept == 0 {
		t.Fatal("sweep configured but nothing swept")
	}
	if res.PoisonSwept < res.PoisonInjected {
		t.Fatalf("swept %d < injected %d: poison left in the directory at finish",
			res.PoisonSwept, res.PoisonInjected)
	}
	if res.InvariantViolations != 0 {
		t.Fatalf("%d invariant violations under poisoning", res.InvariantViolations)
	}
}

// TestChaosPoisonWithoutSweepDegrades pins the attack's teeth: with no
// sweep, poisoned entries survive to the final cleanup and every probe
// of one pays a wasted P2P round trip (visible as directory false
// positives).
func TestChaosPoisonWithoutSweep(t *testing.T) {
	tr := testTrace(t, 1)
	cfg := chaosBase(nil)
	cfg.PoisonEvery = 500
	cfg.PoisonBatch = 8
	res := run(t, tr, cfg)
	if res.PoisonInjected == 0 {
		t.Fatal("poisoning configured but nothing injected")
	}
	// The finish pass sweeps whatever the (absent) periodic sweep left;
	// without DirSweepEvery everything still resident lands there.
	if res.PoisonSwept == 0 {
		t.Fatal("final sweep removed nothing — injection is not reaching the directory")
	}
}

// TestChaosByzantine pins the byzantine-serve knob: corrupt P2P serves
// happen, sampling detects a fraction of them, and detection never
// exceeds the corruption count.
func TestChaosByzantine(t *testing.T) {
	tr := testTrace(t, 1)
	chk := invariant.New(nil)
	cfg := chaosBase(chk)
	cfg.ByzantineFraction = 0.5
	cfg.VerifyFraction = 1.0
	res := run(t, tr, cfg)
	if err := chk.Err(); err != nil {
		t.Fatal(err)
	}
	if res.ByzantineServes == 0 {
		t.Fatal("byzantine fraction configured but no corrupt serves")
	}
	if res.ByzantineDetected == 0 {
		t.Fatal("full verification sampling detected nothing")
	}
	if res.ByzantineDetected > res.ByzantineServes {
		t.Fatalf("detected %d > served %d", res.ByzantineDetected, res.ByzantineServes)
	}
	if res.InvariantViolations != 0 {
		t.Fatalf("%d invariant violations under byzantine serves", res.InvariantViolations)
	}
}

// TestChaosKnobsOffMatchBaseline guards the digest pin the cheap way:
// a run with every chaos knob zero must be bit-identical to a plain
// run — the knobs may not consume rng draws or touch state when off.
func TestChaosKnobsOffMatchBaseline(t *testing.T) {
	tr := testTrace(t, 1)
	plain := run(t, tr, chaosBase(nil))
	again := run(t, tr, chaosBase(nil))
	if plain.HitRatio(0) != again.HitRatio(0) || plain.AvgLatency != again.AvgLatency {
		t.Fatal("baseline replay is not deterministic")
	}
}
