//go:build !race

package sim

// Zero-alloc gates on the simulator's steady-state inner loop.  After
// one warmup replay, a serve must not touch the heap: the arena and
// policy scratch buffers (arena.go, cache.Policy.Add) absorb every
// per-request record, and the hoisted lookup tables (fc.go tierOf,
// fleet.go cands, tiered.go missLFU) replace the per-request map and
// interface work.  testing.AllocsPerRun floor-divides total mallocs by
// runs, so a rare map-rehash still passes while any per-request
// allocation fails the gate at >= 1.
//
// The file is excluded under the race detector (make check), whose
// instrumentation allocates on paths the production build does not.

import (
	"testing"
)

// serveSteadyStateAllocs warms eng with one full replay and then
// measures allocations per serve over a second replay.
func serveSteadyStateAllocs(t *testing.T, cfg Config) float64 {
	t.Helper()
	tr := testTrace(t, 1)
	cfg.fillDefaults()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	sz := computeSizing(tr, cfg)
	var eng engine
	var err error
	switch {
	case cfg.Scheme == HierGD && cfg.FleetSize > 1:
		eng, err = newFleetEngine(cfg, sz)
	case cfg.Scheme == HierGD:
		eng, err = newHierGDEngine(cfg, sz)
	default:
		eng = newLFUEngine(cfg, sz)
	}
	if err != nil {
		t.Fatal(err)
	}
	replay := func() {
		for _, r := range tr.Requests {
			proxy, member := clientMapping(cfg, r.Client)
			eng.serve(r.Object, r.Size, proxy, member, nil)
		}
	}
	replay() // warm caches, popularity maps, and memoized tables

	i := 0
	return testing.AllocsPerRun(len(tr.Requests), func() {
		r := tr.Requests[i%len(tr.Requests)]
		i++
		proxy, member := clientMapping(cfg, r.Client)
		eng.serve(r.Object, r.Size, proxy, member, nil)
	})
}

// TestServeZeroAllocLFU gates the NC/SC/EC engine family: the per-proxy
// tiered LFU caches with inter-proxy cooperation.
func TestServeZeroAllocLFU(t *testing.T) {
	cfg := Config{Scheme: SCEC, ProxyCacheFrac: 0.3, ClientsPerCluster: 16, Seed: 1}
	if allocs := serveSteadyStateAllocs(t, cfg); allocs != 0 {
		t.Errorf("SC-EC steady-state serve allocates %.1f objects/request, want 0", allocs)
	}
}

// TestServeZeroAllocFleet gates the fleet engine: consistent-hash
// partitioning with hot-object replication, the heaviest serve path.
func TestServeZeroAllocFleet(t *testing.T) {
	cfg := Config{
		Scheme:            HierGD,
		ProxyCacheFrac:    0.3,
		ClientsPerCluster: 16,
		Seed:              1,
		FleetSize:         4,
		FleetReplication:  2,
	}
	if allocs := serveSteadyStateAllocs(t, cfg); allocs != 0 {
		t.Errorf("fleet steady-state serve allocates %.1f objects/request, want 0", allocs)
	}
}
