package sim

import (
	"webcache/internal/cache"
	"webcache/internal/invariant"
	"webcache/internal/trace"
)

// tieredCache is the unified proxy+P2P cache the EC schemes use: an
// exclusive two-level hierarchy where the proxy tier serves at Tl and
// the client tier at Tp2p.  Insertions enter the proxy tier; proxy
// evictions demote into the client tier; client-tier hits promote back
// up (and the displaced proxy-tier victim demotes).  "Proxies and
// their own P2P client caches share cache contents and coordinate
// replacement so that they appear as one unified cache" (§2).
//
// With singlePool=true the two capacities are pooled into one cache
// whose hits all cost the proxy-tier latency: the paper's literal
// "simulate a P2P client cache as one single cache" upper bound.
type tieredCache struct {
	upper      cache.Policy
	lower      cache.Policy
	history    map[trace.ObjectID]uint64 // shared perfect-LFU history (nil for in-cache LFU)
	singlePool bool
	// missLFU is the proxy tier's LFU resolved once at construction
	// (reaching through the invariant wrapper), so recordMiss on the
	// per-request miss path costs no type assertions.  Nil when the base
	// policy is not an LFU.
	missLFU *cache.LFU
	// upperEvictions counts objects the proxy tier evicted (demoted
	// or discarded) — the Result.ProxyEvictions telemetry.
	upperEvictions int
}

// newTieredCache builds the unified cache for one proxy.  chk wires
// invariant checking around both tiers (nil disables it); label
// distinguishes proxies in violation reports.
func newTieredCache(proxyCap, p2pCap uint64, kind BasePolicy, singlePool bool, chk *invariant.Checker, label string) *tieredCache {
	t := &tieredCache{singlePool: singlePool}
	mk := func(capacity uint64, tier string) cache.Policy {
		var p cache.Policy
		switch kind {
		case BaseLFUInCache:
			p = cache.NewLFU(capacity)
		case BaseLRU:
			p = cache.NewLRU(capacity)
		case BaseGreedyDual:
			p = cache.NewGreedyDual(capacity)
		default: // BasePerfectLFU
			if t.history == nil {
				t.history = make(map[trace.ObjectID]uint64)
			}
			p = cache.NewPerfectLFUShared(capacity, t.history)
		}
		return invariant.WrapPolicy(p, chk, label+tier)
	}
	if singlePool {
		t.upper = mk(proxyCap+p2pCap, ".pool")
	} else {
		t.upper = mk(proxyCap, ".proxy")
		t.lower = mk(p2pCap, ".client")
	}
	p := t.upper
	if u, ok := p.(interface{ Unwrap() cache.Policy }); ok {
		p = u.Unwrap() // reach through the invariant wrapper
	}
	t.missLFU, _ = p.(*cache.LFU)
	return t
}

// tier identifies where a unified-cache hit was served.
type tier int

const (
	tierMiss tier = iota
	tierProxy
	tierClient
)

// access looks obj up in the unified cache, promoting client-tier hits.
func (t *tieredCache) access(obj trace.ObjectID) tier {
	if t.upper.Access(obj) {
		return tierProxy
	}
	if t.singlePool {
		return tierMiss
	}
	e, ok := t.lower.Peek(obj)
	if !ok {
		return tierMiss
	}
	// Promote: the object moves up; whatever the proxy tier evicts to
	// make room demotes down.  Count the access in the shared history
	// via Access before removal so LFU ranks stay truthful.
	t.lower.Access(obj)
	t.lower.Remove(obj)
	t.insert(e)
	return tierClient
}

// recordMiss updates perfect-LFU history for an uncached object.  The
// LFU was resolved once at construction so this stays assertion-free
// on the miss path.
func (t *tieredCache) recordMiss(obj trace.ObjectID) {
	if t.missLFU != nil {
		t.missLFU.RecordMiss(obj)
	}
}

// insert adds a fetched object to the proxy tier, cascading evictions
// into the client tier.  Objects falling out of the client tier leave
// the unified cache entirely.
func (t *tieredCache) insert(e cache.Entry) {
	if t.upper.Contains(e.Obj) {
		return
	}
	for _, ev := range t.upper.Add(e) {
		t.upperEvictions++
		if t.lower == nil {
			continue
		}
		if uint64(ev.Size) > t.lower.Capacity() || t.lower.Contains(ev.Obj) {
			continue
		}
		// Demotion: client-tier overflow is discarded.
		t.lower.Add(ev)
	}
}

// contains reports presence in either tier (for inter-proxy sharing).
func (t *tieredCache) contains(obj trace.ObjectID) bool {
	if t.upper.Contains(obj) {
		return true
	}
	return t.lower != nil && t.lower.Contains(obj)
}

// touchRemote refreshes replacement state when a cooperating proxy
// fetches obj from this unified cache.
func (t *tieredCache) touchRemote(obj trace.ObjectID) {
	if t.upper.Access(obj) {
		return
	}
	if t.lower != nil {
		t.lower.Access(obj)
	}
}

// objects snapshots the unified contents (for digest rebuilds).
func (t *tieredCache) objects() []trace.ObjectID {
	out := t.upper.Objects()
	if t.lower != nil {
		out = append(out, t.lower.Objects()...)
	}
	return out
}

// len reports the unified population (tests).
func (t *tieredCache) len() int {
	n := t.upper.Len()
	if t.lower != nil {
		n += t.lower.Len()
	}
	return n
}
