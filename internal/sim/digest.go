package sim

import (
	"webcache/internal/bloom"
	"webcache/internal/trace"
)

// Inter-proxy digests (Summary Cache, Fan et al. — the paper's
// reference [7] and the deployable form of "directory-based schemes"
// its related work surveys).
//
// With Config.DigestInterval == 0 the simulator gives cooperating
// proxies perfect, instantaneous knowledge of each other's contents —
// the idealization the paper's SC/FC/Hier-GD results assume.  With a
// positive interval, each proxy instead publishes a Bloom-filter
// digest of everything it can serve (proxy cache plus, for Hier-GD,
// its P2P client cache) every N requests.  Peers consult the possibly
// stale digest; a probe that the digest endorses but the peer can no
// longer serve costs a wasted Tc round trip on top of wherever the
// object is finally found, exactly as a stale Summary-Cache entry
// does.
type digest struct {
	filter *bloom.Filter
	fpRate float64
	// contents enumerates what the owner can currently serve; it is
	// re-snapshotted into the filter on each rebuild.
	contents func() []trace.ObjectID
	rebuilds int
}

// newDigest creates a digest around a content snapshotter.
func newDigest(capacityHint int, fpRate float64, contents func() []trace.ObjectID) *digest {
	d := &digest{
		filter:   bloom.NewForCapacity(capacityHint+1, fpRate),
		fpRate:   fpRate,
		contents: contents,
	}
	d.rebuild()
	return d
}

// rebuild re-snapshots the owner's contents.
func (d *digest) rebuild() {
	d.filter.Reset()
	for _, obj := range d.contents() {
		d.filter.Add(uint64(obj))
	}
	d.rebuilds++
}

// mayContain consults the (possibly stale) digest.
func (d *digest) mayContain(obj trace.ObjectID) bool {
	return d.filter.MayContain(uint64(obj))
}

// memoryBytes is the digest's advertised footprint.
func (d *digest) memoryBytes() uint64 { return d.filter.MemoryBytes() }
