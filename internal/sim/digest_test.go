package sim

import (
	"testing"

	"webcache/internal/netmodel"
	"webcache/internal/trace"
)

func TestDigestRebuildTracksContents(t *testing.T) {
	contents := []trace.ObjectID{1, 2, 3}
	d := newDigest(100, 0.01, func() []trace.ObjectID { return contents })
	for _, obj := range contents {
		if !d.mayContain(obj) {
			t.Fatalf("object %d missing after initial build", obj)
		}
	}
	// Change contents; the digest is stale until rebuilt.
	contents = []trace.ObjectID{4, 5}
	if !d.mayContain(1) {
		t.Error("digest rebuilt itself spontaneously")
	}
	d.rebuild()
	if d.mayContain(1) && d.mayContain(2) && d.mayContain(3) {
		t.Error("all stale entries survive a rebuild (FP rate can't explain 3/3)")
	}
	if !d.mayContain(4) || !d.mayContain(5) {
		t.Error("fresh contents missing after rebuild")
	}
	if d.rebuilds != 2 {
		t.Errorf("rebuilds = %d, want 2", d.rebuilds)
	}
	if d.memoryBytes() == 0 {
		t.Error("zero digest memory")
	}
}

func TestDigestSchemesRunAndDegradeGracefully(t *testing.T) {
	tr := testTrace(t, 20)
	for _, scheme := range []Scheme{SC, SCEC, HierGD} {
		t.Run(scheme.String(), func(t *testing.T) {
			perfect := run(t, tr, Config{Scheme: scheme, ProxyCacheFrac: 0.2, Seed: 1})
			digested := run(t, tr, Config{Scheme: scheme, ProxyCacheFrac: 0.2, Seed: 1, DigestInterval: 2_000})
			if digested.DigestRebuilds == 0 {
				t.Fatal("digests never rebuilt")
			}
			if digested.DigestMemoryBytes == 0 {
				t.Error("digest memory unreported")
			}
			// Digests can only lose sharing opportunities (and waste
			// probes), never gain them: latency must not improve by
			// more than noise, and must not explode.
			if digested.AvgLatency < perfect.AvgLatency*0.98 {
				t.Errorf("digests improved latency: %.4f vs %.4f", digested.AvgLatency, perfect.AvgLatency)
			}
			if digested.AvgLatency > perfect.AvgLatency*1.5 {
				t.Errorf("digests degraded latency wildly: %.4f vs %.4f", digested.AvgLatency, perfect.AvgLatency)
			}
			// Remote hits shrink (stale digests miss fresh objects).
			if digested.Sources[netmodel.SrcRemoteProxy] > perfect.Sources[netmodel.SrcRemoteProxy] {
				t.Errorf("digests increased remote hits: %d vs %d",
					digested.Sources[netmodel.SrcRemoteProxy], perfect.Sources[netmodel.SrcRemoteProxy])
			}
		})
	}
}

func TestDigestStalenessGrowsWithInterval(t *testing.T) {
	tr := testTrace(t, 21)
	remoteHits := func(interval int) int {
		res := run(t, tr, Config{Scheme: SC, ProxyCacheFrac: 0.2, Seed: 1, DigestInterval: interval})
		return res.Sources[netmodel.SrcRemoteProxy]
	}
	fresh := remoteHits(500)
	stale := remoteHits(20_000)
	if stale > fresh {
		t.Errorf("stale digests (20k) found more remote hits (%d) than fresh (500: %d)", stale, fresh)
	}
}

func TestDigestNCUnaffected(t *testing.T) {
	tr := testTrace(t, 22)
	plain := run(t, tr, Config{Scheme: NC, ProxyCacheFrac: 0.2, Seed: 1})
	dig := run(t, tr, Config{Scheme: NC, ProxyCacheFrac: 0.2, Seed: 1, DigestInterval: 1_000})
	if plain.AvgLatency != dig.AvgLatency {
		t.Error("digest interval changed NC (non-cooperative) results")
	}
	if dig.DigestRebuilds != 0 {
		t.Error("NC built digests")
	}
}

func TestDigestConfigValidation(t *testing.T) {
	tr := testTrace(t, 23)
	if _, err := Run(tr, Config{Scheme: SC, DigestInterval: -5}); err == nil {
		t.Error("negative digest interval accepted")
	}
	if _, err := Run(tr, Config{Scheme: SC, DigestFPRate: 2}); err == nil {
		t.Error("digest FP rate 2 accepted")
	}
}
