package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"webcache/internal/netmodel"
)

// Property: over random small configurations of every scheme, the
// simulator conserves requests, keeps latency within the physical
// bounds, and never serves from tiers the scheme does not have.
func TestPropSimInvariants(t *testing.T) {
	tr := testTrace(t, 90)
	f := func(seed int64, raw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		scheme := Scheme(int(raw) % (NumSchemes))
		cfg := Config{
			Scheme:            scheme,
			ProxyCacheFrac:    0.05 + rng.Float64()*0.9,
			ClientsPerCluster: 20 + rng.Intn(80),
			NumProxies:        1 + rng.Intn(3),
			Seed:              seed,
		}
		res, err := Run(tr, cfg)
		if err != nil {
			return false
		}
		sum := 0
		for _, n := range res.Sources {
			sum += n
		}
		if sum != tr.Len() {
			return false
		}
		net := netmodel.Default()
		if res.AvgLatency < 0 || res.AvgLatency > net.Tl+net.Ts+net.Tc {
			return false
		}
		if !scheme.UsesClientCaches() && res.Sources[netmodel.SrcP2P] != 0 {
			return false
		}
		if !scheme.Cooperative() && res.Sources[netmodel.SrcRemoteProxy] != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
