package sim

import (
	"webcache/internal/cache"
	"webcache/internal/netmodel"
	"webcache/internal/obs"
	"webcache/internal/trace"
)

// fcEngine implements FC and FC-EC: the fully coordinated schemes.
// "Based on the assumption of the perfect frequency knowledge to each
// object, the cost-benefit replacement algorithm minimizes the
// aggregate average latency of all the clients in the proxy cluster"
// (§2) — an upper bound on coordination.
//
// We realize perfect frequency knowledge as a *windowed* greedy
// cost-benefit placement (see internal/cache/costbenefit.go and
// DESIGN.md §2.4): every FCWindow requests the cluster's caches are
// re-placed optimally (greedily) for the per-proxy object frequencies
// of the upcoming window.  That is deliberately clairvoyant — the
// paper frames FC/FC-EC as "the upper bound on performance benefit of
// cooperating proxy caching", and window-ahead knowledge is what
// "perfect frequency knowledge" buys a coordinated replacement
// algorithm.  (A whole-trace static placement would under-perform the
// online schemes on workloads with temporal locality; the trailing-
// window variant — Config.FCTrailing — is the implementable adaptive
// form and is strictly weaker.)
//
// For FC-EC each proxy contributes two tiers: its proxy cache at Tl
// and its pooled P2P client cache at Tp2p.
type fcEngine struct {
	cfg       Config
	tr        *trace.Trace
	sz        sizing
	window    int
	placement *cache.Placement
	// tierKind[t] maps tier index -> serving source for a local hit.
	tierKind []netmodel.Source
	// tierOf[p][o] is the dense mirror of placement.ByProxy[p][o] (-1
	// when proxy p holds no copy of o), and anywhere[o] mirrors
	// placement.Anywhere(o).  Object ids are dense [0, NumObjects), so
	// these arrays replace two map probes per request with two indexed
	// loads; they are allocated once and refilled at window boundaries.
	tierOf   [][]int16
	anywhere []bool
}

// defaultFCWindow is the re-placement period in requests.
const defaultFCWindow = 10_000

func newFCEngine(tr *trace.Trace, cfg Config, sz sizing) (*fcEngine, error) {
	e := &fcEngine{cfg: cfg, tr: tr, sz: sz, window: cfg.FCWindow}
	if e.window <= 0 {
		e.window = defaultFCWindow
	}
	for p := 0; p < cfg.NumProxies; p++ {
		e.tierKind = append(e.tierKind, netmodel.SrcLocalProxy)
		if cfg.Scheme == FCEC {
			e.tierKind = append(e.tierKind, netmodel.SrcP2P)
		}
	}
	if err := e.replace(0); err != nil {
		return nil, err
	}
	return e, nil
}

// replace recomputes the coordinated placement when the replay reaches
// request index at: from the upcoming window [at, at+window) by
// default, or under FCTrailing from the previous window [at-window,
// at) (the very first window has no past and always looks forward).
func (e *fcEngine) replace(at int) error {
	lo, hi := at, at+e.window
	if e.cfg.FCTrailing && at > 0 {
		lo, hi = at-e.window, at
	}
	if lo < 0 {
		lo = 0
	}
	if hi > e.tr.Len() {
		hi = e.tr.Len()
	}
	freq := make([][]float64, e.cfg.NumProxies)
	for p := range freq {
		freq[p] = make([]float64, e.tr.NumObjects)
	}
	var sizes []uint32
	for _, r := range e.tr.Requests[lo:hi] {
		p, _ := clientMapping(e.cfg, r.Client)
		freq[p][r.Object]++
		if r.Size != 1 && sizes == nil {
			sizes = make([]uint32, e.tr.NumObjects)
		}
	}
	if sizes != nil {
		for i := range sizes {
			sizes[i] = 1
		}
		for _, r := range e.tr.Requests {
			sizes[r.Object] = r.Size
		}
	}
	var tiers []cache.Tier
	for p := 0; p < e.cfg.NumProxies; p++ {
		tiers = append(tiers, cache.Tier{Proxy: p, Capacity: int(e.sz.proxyCap[p]), HitLatency: e.cfg.Net.Tl})
		if e.cfg.Scheme == FCEC {
			lat := e.cfg.Net.Tp2p
			if e.cfg.SinglePoolEC {
				// Literal pooled upper bound: client-tier hits at Tl.
				lat = e.cfg.Net.Tl
			}
			tiers = append(tiers, cache.Tier{Proxy: p, Capacity: int(e.sz.p2pCap[p]), HitLatency: lat})
		}
	}
	pl, err := cache.ComputePlacement(cache.PlacementInput{
		Freq:          freq,
		Tiers:         tiers,
		ServerLatency: e.cfg.Net.Ts,
		RemoteLatency: e.cfg.Net.Tc,
		Cooperative:   true,
		Sizes:         sizes,
	})
	if err != nil {
		return err
	}
	e.placement = pl
	if e.tierOf == nil {
		e.tierOf = make([][]int16, e.cfg.NumProxies)
		for p := range e.tierOf {
			e.tierOf[p] = make([]int16, e.tr.NumObjects)
		}
		e.anywhere = make([]bool, e.tr.NumObjects)
	}
	for i := range e.anywhere {
		e.anywhere[i] = false
	}
	for p, m := range pl.ByProxy {
		dense := e.tierOf[p]
		for i := range dense {
			dense[i] = -1
		}
		for obj, t := range m {
			dense[obj] = int16(t)
			e.anywhere[obj] = true
		}
	}
	return nil
}

// maintain re-places the caches at window boundaries.
func (e *fcEngine) maintain(reqIdx int, res *Result) {
	if reqIdx == 0 || reqIdx%e.window != 0 {
		return
	}
	res.MaintenanceTicks++
	// The frequencies are recomputed from the trace; errors cannot
	// occur after the constructor validated the shape once.
	if err := e.replace(reqIdx); err != nil {
		panic("sim: window re-placement failed: " + err.Error())
	}
}

func (e *fcEngine) serve(obj trace.ObjectID, _ uint32, proxy, _ int, st *obs.SpanTrace) (netmodel.Source, float64) {
	net := e.cfg.Net
	if t := e.tierOf[proxy][obj]; t >= 0 {
		src := e.tierKind[t]
		if src == netmodel.SrcP2P && e.cfg.SinglePoolEC {
			// Pooled client tier serves at proxy latency but is still
			// accounted as a P2P-tier hit.
			st.Span("pool.hit", string(netmodel.CompTl), net.Tl)
			return src, net.Latency(netmodel.SrcLocalProxy)
		}
		st.Span("proxy.cache", string(netmodel.CompTl), net.Tl)
		if src == netmodel.SrcP2P {
			st.Span("p2p.fetch", string(netmodel.CompTp2p), net.Tp2p)
		}
		return src, net.Latency(src)
	}
	st.Span("proxy.cache", string(netmodel.CompTl), net.Tl)
	// Any other proxy's copy (proxy tier or, via push, its P2P client
	// cache) serves at Tc.
	if e.anywhere[obj] {
		st.Span("peer.fetch", string(netmodel.CompTc), net.Tc)
		return netmodel.SrcRemoteProxy, net.Latency(netmodel.SrcRemoteProxy)
	}
	st.Span("origin.fetch", string(netmodel.CompTs), net.Ts)
	return netmodel.SrcServer, net.Latency(netmodel.SrcServer)
}

func (e *fcEngine) finish(*Result) {}
