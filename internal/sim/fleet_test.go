package sim

import (
	"os"
	"testing"

	"webcache/internal/invariant"
	"webcache/internal/netmodel"
	"webcache/internal/obs"
)

// TestFleetEngineChecked runs the fleet engine with the full invariant
// harness: shadow-checked member caches plus the strict replica ledger
// reconciled against a ground-truth scan of every cache at finish.
func TestFleetEngineChecked(t *testing.T) {
	tr := testTrace(t, 31)
	chk := invariant.New(nil)
	res := run(t, tr, Config{
		Scheme:            HierGD,
		ClientsPerCluster: 50,
		FleetSize:         4,
		FleetReplication:  2,
		FleetHotAfter:     8,
		ProxyCacheFrac:    0.2,
		Seed:              1,
		Check:             chk,
	})
	if chk.ViolationCount() != 0 {
		t.Fatalf("invariant violations: %d\n%v", chk.ViolationCount(), chk.Violations())
	}
	if res.InvariantChecks == 0 {
		t.Fatal("no invariant checks ran")
	}
	if res.FleetMembers != 4 {
		t.Fatalf("FleetMembers = %d, want 4", res.FleetMembers)
	}
	if res.FleetRouted == 0 || res.FleetRoutedHits == 0 || res.FleetRoutedOrigin == 0 {
		t.Fatalf("fleet routing never exercised: %+v", res)
	}
	if res.FleetReplicas == 0 {
		t.Fatal("hot-object replication never fired")
	}
	if res.FleetHotKeys == 0 {
		t.Fatal("load estimator tracked no keys")
	}
	if res.FleetRouteFailed != 0 || res.FleetRouteSkipped != 0 {
		t.Fatalf("partition counters moved without a partition: %+v", res)
	}
	// Every request is accounted to exactly one tier and P2P stays
	// untouched (the fleet variant has no client tier).
	if res.Sources[netmodel.SrcP2P] != 0 {
		t.Fatalf("fleet engine served %d requests from P2P", res.Sources[netmodel.SrcP2P])
	}
	if res.Requests != tr.Len() {
		t.Fatalf("accounted %d requests, trace has %d", res.Requests, tr.Len())
	}
}

// TestFleetReplicationSpreadsHits holds the partitioned baseline (k=1)
// against k=2 replication on the same trace: replication must convert
// remote fleet hops into front-local hits.
func TestFleetReplicationSpreadsHits(t *testing.T) {
	tr := testTrace(t, 32)
	base := run(t, tr, Config{
		Scheme: HierGD, ClientsPerCluster: 50, FleetSize: 4, FleetReplication: 1,
		ProxyCacheFrac: 0.2, Seed: 1,
	})
	repl := run(t, tr, Config{
		Scheme: HierGD, ClientsPerCluster: 50, FleetSize: 4, FleetReplication: 2, FleetHotAfter: 8,
		ProxyCacheFrac: 0.2, Seed: 1,
	})
	if base.FleetReplicas != 0 {
		t.Fatalf("k=1 placed %d replicas", base.FleetReplicas)
	}
	if repl.FleetReplicas == 0 {
		t.Fatal("k=2 placed no replicas")
	}
	if repl.HitRatio(netmodel.SrcLocalProxy) <= base.HitRatio(netmodel.SrcLocalProxy) {
		t.Fatalf("replication did not raise the front-local hit ratio: %.4f vs %.4f",
			repl.HitRatio(netmodel.SrcLocalProxy), base.HitRatio(netmodel.SrcLocalProxy))
	}
}

// TestFleetPartition isolates one member mid-run: routing must skip
// it, some requests fall back to origin uncached, and the (lenient)
// conservation ledger still balances.
func TestFleetPartition(t *testing.T) {
	tr := testTrace(t, 33)
	chk := invariant.New(nil)
	res := run(t, tr, Config{
		Scheme: HierGD, ClientsPerCluster: 50, FleetSize: 3, FleetReplication: 2, FleetHotAfter: 8,
		FleetPartitionAt: tr.Len() / 2,
		ProxyCacheFrac:   0.2, Seed: 1,
		Check: chk,
	})
	if chk.ViolationCount() != 0 {
		t.Fatalf("invariant violations: %d\n%v", chk.ViolationCount(), chk.Violations())
	}
	if res.FleetRouteSkipped == 0 {
		t.Fatal("partitioned member was never skipped")
	}
	if res.FleetRouteFailed == 0 {
		t.Fatal("no requests fell through to origin during the partition")
	}
	if res.MaintenanceTicks == 0 {
		t.Fatal("partition never ticked")
	}
}

// TestFleetConfigValidation pins the fleet knob error paths and the
// NumProxies coupling.
func TestFleetConfigValidation(t *testing.T) {
	tr := testTrace(t, 34)
	if _, err := Run(tr, Config{Scheme: SC, FleetSize: 4}); err == nil {
		t.Fatal("FleetSize on a non-HierGD scheme must fail validation")
	}
	if _, err := Run(tr, Config{Scheme: HierGD, FleetSize: 4, FleetReplication: 5}); err == nil {
		t.Fatal("replication > fleet size must fail validation")
	}
	if _, err := Run(tr, Config{Scheme: HierGD, FleetSize: -1}); err == nil {
		t.Fatal("negative fleet size must fail validation")
	}
	res := run(t, tr, Config{Scheme: HierGD, ClientsPerCluster: 50, FleetSize: 4, NumProxies: 2, ProxyCacheFrac: 0.2, Seed: 1})
	if res.FleetMembers != 4 || len(res.ProxyCapacities) != 4 {
		t.Fatalf("FleetSize did not force NumProxies: members=%d caps=%d",
			res.FleetMembers, len(res.ProxyCapacities))
	}
}

// TestMetricsDocSimFleet smoke-runs the fleet engine with a registry
// and holds METRICS.md's sim.fleet.* section against the registered
// names, both ways.
func TestMetricsDocSimFleet(t *testing.T) {
	md, err := os.ReadFile("../../METRICS.md")
	if err != nil {
		t.Fatal(err)
	}
	tr := testTrace(t, 35)
	reg := obs.NewRegistry("fleet-doc-smoke")
	run(t, tr, Config{
		Scheme: HierGD, ClientsPerCluster: 50, FleetSize: 3, FleetReplication: 2, FleetHotAfter: 8,
		FleetPartitionAt: tr.Len() / 2,
		ProxyCacheFrac:   0.2, Seed: 1, Obs: reg,
	})
	var names []string
	for _, m := range reg.Snapshot() {
		names = append(names, m.Name)
	}
	if err := obs.CheckMetricsDoc(md, names, "sim.fleet"); err != nil {
		t.Fatal(err)
	}
}
