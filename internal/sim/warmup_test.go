package sim

import "testing"

func TestWarmupExcludesColdStart(t *testing.T) {
	tr := testTrace(t, 60)
	cold := run(t, tr, Config{Scheme: NC, ProxyCacheFrac: 0.3, Seed: 1})
	warm := run(t, tr, Config{Scheme: NC, ProxyCacheFrac: 0.3, Seed: 1, WarmupRequests: 20_000})
	if warm.Requests != tr.Len()-20_000 {
		t.Fatalf("measured %d requests, want %d", warm.Requests, tr.Len()-20_000)
	}
	// Steady state must look better than whole-trace (compulsory
	// misses concentrated early).
	if warm.AvgLatency >= cold.AvgLatency {
		t.Errorf("warm latency %.4f >= cold %.4f", warm.AvgLatency, cold.AvgLatency)
	}
	sum := 0
	for _, n := range warm.Sources {
		sum += n
	}
	if sum != warm.Requests {
		t.Errorf("conservation under warmup broken: %d vs %d", sum, warm.Requests)
	}
}

func TestWarmupValidation(t *testing.T) {
	tr := testTrace(t, 61)
	if _, err := Run(tr, Config{Scheme: NC, WarmupRequests: -1}); err == nil {
		t.Error("negative warmup accepted")
	}
}

// Sharing-starved organizations: with high cluster affinity the
// inter-proxy schemes lose their edge while the EC tier keeps its own.
func TestClusterAffinityStarvesSharing(t *testing.T) {
	mk := func(aff float64) float64 {
		tr, err := genAffinity(aff)
		if err != nil {
			t.Fatal(err)
		}
		nc := run(t, tr, Config{Scheme: NC, ProxyCacheFrac: 0.2, Seed: 1})
		sc := run(t, tr, Config{Scheme: SC, ProxyCacheFrac: 0.2, Seed: 1})
		return 1 - sc.AvgLatency/nc.AvgLatency
	}
	homogeneous := mk(0)
	disjoint := mk(0.95)
	if disjoint >= homogeneous {
		t.Errorf("SC gain with disjoint interests %.3f >= homogeneous %.3f", disjoint, homogeneous)
	}
}
