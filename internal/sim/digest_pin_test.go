package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"testing"
)

// TestResultDigestPinned pins a SHA-256 over the JSON-marshalled
// Result of every scheme on a fixed ProWGen trace and configuration.
// The simulator is single-threaded and seed-deterministic, so this
// digest must never move unless a simulator change is intended — in
// particular, refactors of the live data plane (internal/store,
// internal/httpcache) must leave it bit-identical.  When a deliberate
// simulator change lands, re-pin by running the test and copying the
// digest from the failure message.
func TestResultDigestPinned(t *testing.T) {
	// Re-pinned when Result gained the fleet-telemetry fields (new
	// zero-valued JSON keys; every numeric outcome was verified
	// unchanged).
	const pinned = "99dfd9166b291c8de1f535293b5c8c1114b4d7a04fd03cc39bfd947972bf635d"

	tr := testTrace(t, 1)
	h := sha256.New()
	for _, s := range AllSchemes() {
		res := run(t, tr, Config{
			Scheme:            s,
			ProxyCacheFrac:    0.3,
			ClientsPerCluster: 16,
			Seed:              1,
		})
		blob, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(h, "%s:%s\n", s, blob)
	}
	got := hex.EncodeToString(h.Sum(nil))
	if got != pinned {
		t.Fatalf("simulator results digest moved:\n  got  %s\n  want %s\n"+
			"every scheme's Result changed bit-for-bit identity; if this is an intended simulator change, re-pin the constant",
			got, pinned)
	}
}
