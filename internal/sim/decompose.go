package sim

import (
	"fmt"
	"math"
	"strings"

	"webcache/internal/netmodel"
	"webcache/internal/obs"
)

// DecompRow compares one serving tier's span-derived mean latency
// against the analytic model.
type DecompRow struct {
	// Tier is the netmodel.Source label ("local-proxy", "p2p-cache",
	// "remote-proxy", "server").
	Tier string `json:"tier"`
	// Requests is the number of sampled traces that finished at this
	// tier.
	Requests int `json:"requests"`
	// Observed is the mean serving latency derived from spans, with
	// wasted probes (stale digests, directory false positives)
	// subtracted — the cost of the path that actually served the
	// request.
	Observed float64 `json:"observed"`
	// Analytic is netmodel.Model.Latency for the tier's source.
	Analytic float64 `json:"analytic"`
	// Delta is Observed - Analytic.
	Delta float64 `json:"delta"`
}

// DecompReport is the latency decomposition cross-checked against the
// analytic network model.
type DecompReport struct {
	Rows []DecompRow `json:"rows"`
	// MaxAbsDelta is the largest |Delta| across rows.
	MaxAbsDelta float64 `json:"max_abs_delta"`
	// Tolerance is the bound the check was run with.
	Tolerance float64 `json:"tolerance"`
	// Within reports whether every row's |Delta| <= Tolerance.
	Within bool `json:"within"`
}

// CheckDecomposition folds a span-derived latency decomposition
// against the analytic model: for each serving tier, the observed mean
// serving latency (total charged latency minus wasted probes, per
// request) must equal m.Latency(source) to within tol.
//
// The seven paper schemes satisfy this exactly (PerHop = 0): every
// engine charges Latency(src) plus wasted probes, and wasted spans are
// subtracted before comparing.  Two deliberate deviations exist and
// are the caller's to expect:
//
//   - Squirrel serves without a proxy, so its p2p tier misses the Tl
//     leg (Delta = -Tl) and its server tier misses it too;
//   - FC-EC with SinglePoolEC serves pooled client-tier hits at proxy
//     latency, so its p2p tier lands at Latency(local-proxy)
//     (Delta = Tl - Tp2p).
//
// Tiers whose label does not parse as a netmodel source are skipped.
func CheckDecomposition(m netmodel.Model, d *obs.Decomposition, tol float64) *DecompReport {
	rep := &DecompReport{Tolerance: tol, Within: true}
	if d == nil {
		return rep
	}
	for _, td := range d.Tiers {
		src, ok := netmodel.ParseSource(td.Tier)
		if !ok {
			continue
		}
		row := DecompRow{
			Tier:     td.Tier,
			Requests: td.Requests,
			Observed: td.MeanServed(),
			Analytic: m.Latency(src),
		}
		row.Delta = row.Observed - row.Analytic
		if a := math.Abs(row.Delta); a > rep.MaxAbsDelta {
			rep.MaxAbsDelta = a
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Within = rep.MaxAbsDelta <= tol
	return rep
}

// Table renders the report as an aligned text table.
func (r *DecompReport) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %10s %12s %12s %12s\n", "tier", "requests", "observed", "analytic", "delta")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s %10d %12.6f %12.6f %+12.6f\n",
			row.Tier, row.Requests, row.Observed, row.Analytic, row.Delta)
	}
	fmt.Fprintf(&b, "max |delta| = %g (tolerance %g, within=%v)\n", r.MaxAbsDelta, r.Tolerance, r.Within)
	return b.String()
}
