package sim

import (
	"fmt"

	"webcache/internal/invariant"
	"webcache/internal/netmodel"
	"webcache/internal/obs"
	"webcache/internal/trace"
)

// BasePolicy selects the replacement policy of the LFU-family schemes
// (NC, SC, NC-EC, SC-EC).  The paper fixes LFU; the alternatives exist
// to ablate that choice.
type BasePolicy int

const (
	// BasePerfectLFU is the default: frequency counts persist across
	// evictions (the "perfect frequency" reading of the paper's LFU).
	BasePerfectLFU BasePolicy = iota
	// BaseLFUInCache restarts counts when an object re-enters.
	BaseLFUInCache
	// BaseLRU uses recency instead of frequency.
	BaseLRU
	// BaseGreedyDual uses cost-aware greedy-dual even for the
	// non-Hier-GD schemes.
	BaseGreedyDual
)

// String implements fmt.Stringer.
func (b BasePolicy) String() string {
	switch b {
	case BaseLFUInCache:
		return "lfu-incache"
	case BaseLRU:
		return "lru"
	case BaseGreedyDual:
		return "greedy-dual"
	default:
		return "lfu-perfect"
	}
}

// DirectoryKind selects a Hier-GD lookup directory representation
// (paper §4.2).
type DirectoryKind int

const (
	// DirExact is the Exact-Directory hashtable.
	DirExact DirectoryKind = iota
	// DirBloom is the counting-Bloom-filter directory.
	DirBloom
)

// String implements fmt.Stringer.
func (d DirectoryKind) String() string {
	if d == DirBloom {
		return "bloom"
	}
	return "exact"
}

// Paper defaults (§5.1).
const (
	DefaultNumProxies        = 2
	DefaultClientsPerCluster = 100
	DefaultProxyCacheFrac    = 0.5
	DefaultClientCacheFrac   = 0.001
	DefaultBloomFPRate       = 0.01
)

// Config parameterizes one simulation run.
type Config struct {
	// Scheme is the caching scheme to simulate.
	Scheme Scheme
	// NumProxies is the proxy cluster size (paper default 2;
	// Figure 5(d) sweeps to 10).
	NumProxies int
	// ClientsPerCluster is the client cluster size per proxy (paper
	// default 100), which fixes the client->proxy mapping.
	ClientsPerCluster int
	// P2PClientCaches is the number of client machines contributing
	// their cooperative cache partition to the P2P client cache
	// (Figure 5(c) sweeps 100..1000).  0 means every client in the
	// cluster contributes (== ClientsPerCluster).
	P2PClientCaches int
	// Net is the latency model (zero value = paper defaults).
	Net netmodel.Model
	// ProxyCacheFrac sizes each proxy cache as a fraction of its
	// cluster's infinite cache size (the x-axis of every figure).
	ProxyCacheFrac float64
	// ClientCacheFrac sizes each client's cooperative cache as a
	// fraction of the infinite cache size (paper: 0.001, so a
	// 100-client cluster yields a P2P cache of 10%).
	ClientCacheFrac float64
	// Directory selects Hier-GD's lookup directory; BloomFPRate sizes
	// the Bloom variant.
	Directory   DirectoryKind
	BloomFPRate float64
	// Piggyback destages proxy evictions on HTTP responses (§4.4);
	// the paper's design enables it (default true via fillDefaults —
	// set DisablePiggyback to turn it off for the ablation).
	DisablePiggyback bool
	// DisableDiversion turns off Hier-GD's leaf-set object diversion
	// (§4.3) for the ablation bench.
	DisableDiversion bool
	// ProxyGDSF runs Hier-GD's proxy caches with GreedyDual-Size-
	// Frequency instead of plain greedy-dual — the extension policy
	// the library offers beyond the paper.
	ProxyGDSF bool
	// ReplicateHotAfter enables PAST-style hot-object replication in
	// Hier-GD's P2P client caches (see internal/p2p/replicate.go);
	// 0 disables it (the paper's single-copy design).
	ReplicateHotAfter int
	// SinglePoolEC simulates the EC schemes' P2P client cache as one
	// pooled cache at proxy latency — the paper's literal upper bound
	// — instead of the default exclusive two-level (proxy tier at Tl,
	// client tier at Tp2p).
	SinglePoolEC bool
	// FailEvery injects a client-cache crash every N requests
	// (Hier-GD only; 0 disables).  ReplaceFailed re-joins a fresh
	// client after each crash.
	FailEvery     int
	ReplaceFailed bool
	// Chaos scenario knobs (Hier-GD only; all zero = off; see
	// internal/chaos for the scenario vocabulary shared with the live
	// topology).  FlashChurnAt fails FlashChurnFraction (default 0.5)
	// of every cluster's live clients at that request index — the
	// mass-churn storm.  PoisonEvery injects PoisonBatch (default 8)
	// bogus directory entries every N requests, drawn from recently
	// requested objects the cluster does not hold — the directory-
	// poisoning attack (each re-request pays a wasted Tp2p probe).
	// DirSweepEvery is the defense: a periodic directory sweep that
	// drops entries the cluster cannot back.  ByzantineFraction
	// corrupts that fraction of P2P client-cache serves;
	// VerifyFraction is the digest-sampling defense — the fraction of
	// corrupt serves detected (a detected serve pays the wasted P2P
	// fetch and falls through toward peers/origin).
	FlashChurnAt       int
	FlashChurnFraction float64
	PoisonEvery        int
	PoisonBatch        int
	DirSweepEvery      int
	ByzantineFraction  float64
	VerifyFraction     float64
	// FleetSize switches Hier-GD to the cooperating-fleet engine
	// (internal/sim/fleet.go): that many proxy caches partitioned by a
	// consistent-hash ring, no P2P client tier.  0 or 1 keeps the
	// standard Hier-GD engine.  Setting it forces NumProxies ==
	// FleetSize so the trace's client clusters map one-to-one onto
	// fleet members.  FleetReplication is the copy count k for hot
	// objects (default 1: partitioning only); FleetHotAfter is the
	// per-key access count that triggers replication (default 16);
	// FleetPartitionAt isolates the highest-indexed member at that
	// request index (0 = never) — the sim analogue of the chaos
	// fleet-partition scenario.
	FleetSize        int
	FleetReplication int
	FleetHotAfter    int
	FleetPartitionAt int
	// LFUInCache switches NC/SC/NC-EC/SC-EC from perfect-frequency
	// LFU (default) to in-cache LFU.  Shorthand for
	// BasePolicy == BaseLFUInCache.
	LFUInCache bool
	// BasePolicy selects the replacement policy of the LFU-family
	// schemes (NC, SC, NC-EC, SC-EC): the paper fixes LFU (§2); the
	// other values ablate that design choice.
	BasePolicy BasePolicy
	// FCWindow is the re-placement period (in requests) of the FC and
	// FC-EC cost-benefit placement; 0 uses the default (10k).
	FCWindow int
	// FCTrailing computes each FC/FC-EC window placement from the
	// *previous* window's frequencies instead of the upcoming window.
	// The default (upcoming window) matches the paper's framing of
	// FC/FC-EC as upper bounds ("yielding the upper bound on
	// performance benefit of cooperating proxy caching"); the trailing
	// variant is the implementable adaptive form and is strictly
	// weaker — at small caches it can even lose to the online schemes.
	FCTrailing bool
	// DigestInterval switches inter-proxy cooperation from perfect
	// instantaneous knowledge (0, the paper's idealization) to
	// Summary-Cache-style Bloom digests rebuilt and exchanged every N
	// requests.  Stale digest entries cost a wasted Tc probe, charged
	// on top of the final fetch.  Applies to SC, SC-EC and Hier-GD.
	DigestInterval int
	// DigestFPRate sizes the digest filters (default 1%).
	DigestFPRate float64
	// WarmupRequests excludes the first N requests from the latency
	// and hit-ratio accounting (caches still process them), isolating
	// steady-state behaviour from cold-start compulsory misses.  The
	// paper measures whole traces (warmup 0, the default).
	WarmupRequests int
	// ProxyCapacityOverride / ClientCapacityOverride pin the
	// per-cluster cache capacities (in cache units) instead of
	// deriving them from the trace through the Frac fields.  This is
	// how a calibration replay matches a live topology whose
	// capacities were sized from a different (usually longer) trace:
	// internal/loadgen sizes the deployment with CapacityPlan, then
	// replays the actually-issued prefix with the plan pinned here.
	// A single element applies to every cluster; empty (the default)
	// keeps the paper's fractional sizing.
	ProxyCapacityOverride  []uint64
	ClientCapacityOverride []uint64
	// Seed drives overlay construction and failure injection.
	Seed int64
	// Obs, when non-nil, receives run instrumentation (the sim.*
	// namespace: serve/byte counts per tier, evictions, maintenance
	// ticks, directory and P2P telemetry — see METRICS.md).  All
	// metrics are cumulative, so concurrent sweep runs may share one
	// registry.  nil (the default) disables instrumentation at zero
	// cost.
	Obs *obs.Registry `json:"-"`
	// Tracer, when non-nil, records one span trace per sampled request
	// with child spans for each hop of the decision path (local proxy
	// probe, directory lookup, P2P fetch, cooperating-proxy probes,
	// origin fetch), each tagged with the netmodel component it is
	// charged under.  The simulator uses the virtual clock: cumulative
	// charged latency, in Tl units.  nil (the default) disables tracing
	// at zero cost, like Obs and Check.
	Tracer *obs.Tracer `json:"-"`
	// Check, when non-nil, threads the invariant subsystem through
	// every stateful layer of the run: replacement policies and lookup
	// directories are replaced by shadow-checked wrappers, P2P receipt
	// streams feed a conservation ledger, and the Pastry rings are
	// verified against their ground truth at the end of the run.
	// Violations accumulate in the Checker (and in Result.Invariant*);
	// nil (the default) disables checking at zero cost (see DESIGN.md).
	Check *invariant.Checker `json:"-"`
}

func (c *Config) fillDefaults() {
	if c.NumProxies == 0 {
		c.NumProxies = DefaultNumProxies
	}
	if c.ClientsPerCluster == 0 {
		c.ClientsPerCluster = DefaultClientsPerCluster
	}
	if c.P2PClientCaches == 0 {
		c.P2PClientCaches = c.ClientsPerCluster
	}
	if c.Net == (netmodel.Model{}) {
		c.Net = netmodel.Default()
	}
	if c.ProxyCacheFrac == 0 {
		c.ProxyCacheFrac = DefaultProxyCacheFrac
	}
	if c.ClientCacheFrac == 0 {
		c.ClientCacheFrac = DefaultClientCacheFrac
	}
	if c.BloomFPRate == 0 {
		c.BloomFPRate = DefaultBloomFPRate
	}
	if c.DigestFPRate == 0 {
		c.DigestFPRate = DefaultBloomFPRate
	}
	if c.LFUInCache && c.BasePolicy == BasePerfectLFU {
		c.BasePolicy = BaseLFUInCache
	}
	if c.FlashChurnAt > 0 && c.FlashChurnFraction == 0 {
		c.FlashChurnFraction = 0.5
	}
	if c.PoisonEvery > 0 && c.PoisonBatch == 0 {
		c.PoisonBatch = 8
	}
	if c.FleetSize > 1 {
		c.NumProxies = c.FleetSize
		if c.FleetReplication == 0 {
			c.FleetReplication = 1
		}
		if c.FleetHotAfter == 0 {
			c.FleetHotAfter = 16
		}
	}
}

// Validate reports configuration errors (after defaulting).
func (c Config) Validate() error {
	if c.Scheme < 0 || c.Scheme >= numSchemes {
		return fmt.Errorf("sim: invalid scheme %d", c.Scheme)
	}
	if c.NumProxies < 1 {
		return fmt.Errorf("sim: need at least one proxy (got %d)", c.NumProxies)
	}
	if c.ClientsPerCluster < 1 {
		return fmt.Errorf("sim: need at least one client per cluster (got %d)", c.ClientsPerCluster)
	}
	if c.P2PClientCaches < 0 {
		return fmt.Errorf("sim: negative P2P client cache count %d", c.P2PClientCaches)
	}
	if c.ProxyCacheFrac <= 0 || c.ProxyCacheFrac > 1 {
		return fmt.Errorf("sim: proxy cache fraction %g outside (0,1]", c.ProxyCacheFrac)
	}
	if c.ClientCacheFrac <= 0 || c.ClientCacheFrac > 1 {
		return fmt.Errorf("sim: client cache fraction %g outside (0,1]", c.ClientCacheFrac)
	}
	if c.BloomFPRate <= 0 || c.BloomFPRate >= 1 {
		return fmt.Errorf("sim: bloom FP rate %g outside (0,1)", c.BloomFPRate)
	}
	if c.DigestInterval < 0 {
		return fmt.Errorf("sim: negative digest interval %d", c.DigestInterval)
	}
	if c.WarmupRequests < 0 {
		return fmt.Errorf("sim: negative warmup %d", c.WarmupRequests)
	}
	if c.DigestFPRate <= 0 || c.DigestFPRate >= 1 {
		return fmt.Errorf("sim: digest FP rate %g outside (0,1)", c.DigestFPRate)
	}
	if c.FlashChurnAt < 0 || c.PoisonEvery < 0 || c.PoisonBatch < 0 || c.DirSweepEvery < 0 {
		return fmt.Errorf("sim: negative chaos period")
	}
	if c.FlashChurnFraction < 0 || c.FlashChurnFraction > 1 {
		return fmt.Errorf("sim: flash churn fraction %g outside [0,1]", c.FlashChurnFraction)
	}
	if c.ByzantineFraction < 0 || c.ByzantineFraction > 1 {
		return fmt.Errorf("sim: byzantine fraction %g outside [0,1]", c.ByzantineFraction)
	}
	if c.VerifyFraction < 0 || c.VerifyFraction > 1 {
		return fmt.Errorf("sim: verify fraction %g outside [0,1]", c.VerifyFraction)
	}
	if c.FleetSize < 0 || c.FleetPartitionAt < 0 {
		return fmt.Errorf("sim: negative fleet parameter")
	}
	if c.FleetSize > 1 {
		if c.Scheme != HierGD {
			return fmt.Errorf("sim: FleetSize applies to the HierGD scheme only (got %v)", c.Scheme)
		}
		if c.FleetReplication < 1 || c.FleetReplication > c.FleetSize {
			return fmt.Errorf("sim: fleet replication %d outside [1,%d]", c.FleetReplication, c.FleetSize)
		}
	}
	if err := c.Net.Validate(); err != nil {
		return err
	}
	return nil
}

// sizing holds the per-cluster capacities derived from the trace.
type sizing struct {
	infinite  []int    // per-cluster infinite cache size, in cache units
	proxyCap  []uint64 // per-proxy cache capacity
	clientCap []uint64 // per-client cache capacity per cluster
	p2pCap    []uint64 // aggregate P2P capacity per cluster
}

// computeSizing applies the paper's sizing rules (§5.1).  With
// variable-size traces the infinite cache size counts cache units
// rather than objects (they coincide for the paper's unit-size
// workloads).
func computeSizing(tr *trace.Trace, cfg Config) sizing {
	total := cfg.NumProxies * cfg.ClientsPerCluster
	units := trace.InfiniteCacheUnits(tr, cfg.NumProxies, func(c trace.ClientID) int {
		return (int(c) % total) / cfg.ClientsPerCluster
	})
	inf := make([]int, len(units))
	for i, u := range units {
		inf[i] = int(u)
	}
	s := sizing{
		infinite:  inf,
		proxyCap:  make([]uint64, cfg.NumProxies),
		clientCap: make([]uint64, cfg.NumProxies),
		p2pCap:    make([]uint64, cfg.NumProxies),
	}
	for p, n := range inf {
		pc := uint64(cfg.ProxyCacheFrac * float64(n))
		if v, ok := override(cfg.ProxyCapacityOverride, p); ok {
			pc = v
		}
		if pc < 1 {
			pc = 1
		}
		cc := uint64(cfg.ClientCacheFrac * float64(n))
		if v, ok := override(cfg.ClientCapacityOverride, p); ok {
			cc = v
		}
		if cc < 1 {
			cc = 1
		}
		s.proxyCap[p] = pc
		s.clientCap[p] = cc
		s.p2pCap[p] = cc * uint64(cfg.P2PClientCaches)
	}
	return s
}

// override resolves a per-cluster capacity override: one element
// applies everywhere, more select by cluster index.
func override(o []uint64, p int) (uint64, bool) {
	switch {
	case len(o) == 0:
		return 0, false
	case p < len(o):
		return o[p], true
	default:
		return o[len(o)-1], true
	}
}

// CapacityPlan reports the per-cluster proxy and per-client cache
// capacities (in cache units) this configuration resolves to for the
// trace — exactly what Run will simulate.  Exported so a live bench
// (internal/loadgen) can size a real topology identically and the
// calibration replay compares like with like.
func (c Config) CapacityPlan(tr *trace.Trace) (proxyCap, clientCap []uint64) {
	c.fillDefaults()
	sz := computeSizing(tr, c)
	return sz.proxyCap, sz.clientCap
}

// ProxyFor returns the proxy cluster that serves the given trace
// client — the exported form of the replay loop's client mapping, so
// live load generation routes each request to the same front-end the
// simulator would.
func (c Config) ProxyFor(client trace.ClientID) int {
	c.fillDefaults()
	p, _ := clientMapping(c, client)
	return p
}

// clientMapping resolves a trace client onto (proxy, member index).
func clientMapping(cfg Config, c trace.ClientID) (proxy, member int) {
	total := cfg.NumProxies * cfg.ClientsPerCluster
	idx := int(c) % total
	return idx / cfg.ClientsPerCluster, idx % cfg.ClientsPerCluster
}
