package sim

import (
	"math"
	"testing"

	"webcache/internal/netmodel"
)

// hierGDTestEngine builds a small two-proxy Hier-GD engine with exact
// directories whose contents the test can falsify by hand.
func hierGDTestEngine(t *testing.T) (*hierGDEngine, Config) {
	t.Helper()
	cfg := Config{Scheme: HierGD, NumProxies: 2, ClientsPerCluster: 8, Seed: 1}
	cfg.fillDefaults()
	cfg.P2PClientCaches = 8
	sz := sizing{
		infinite:  []int{64, 64},
		proxyCap:  []uint64{8, 8},
		clientCap: []uint64{4, 4},
		p2pCap:    []uint64{32, 32},
	}
	e, err := newHierGDEngine(cfg, sz)
	if err != nil {
		t.Fatal(err)
	}
	return e, cfg
}

// A local-directory false positive (step 2) must charge the wasted
// Tp2p lookup on top of wherever the object is finally found — the
// behaviour hiergd.go documents.  Before the fix the wasted lookup was
// silently free and every Hier-GD latency figure was optimistic.
func TestHierGDLocalFalsePositiveLatency(t *testing.T) {
	e, cfg := hierGDTestEngine(t)
	net := cfg.Net

	const obj = 9999 // never stored anywhere
	px := e.proxies[0]
	px.dir.Add(obj) // falsified directory: claims the P2P cache has it

	src, lat := e.serve(obj, 1, 0, 0, nil)
	if src != netmodel.SrcServer {
		t.Fatalf("served from %v, want server", src)
	}
	want := net.Latency(netmodel.SrcServer) + net.Tp2p
	if math.Abs(lat-want) > 1e-12 {
		t.Errorf("latency = %g, want %g (server latency %g + wasted Tp2p %g)",
			lat, want, net.Latency(netmodel.SrcServer), net.Tp2p)
	}
	if got := px.dirFP.Value(); got != 1 {
		t.Errorf("dirFP = %d, want 1", got)
	}
	if px.dir.MayContain(obj) {
		t.Error("directory not repaired after false positive")
	}
}

// A cooperating proxy's directory false positive in the PushFetch path
// (step 3) wastes the same Tp2p probe and must be charged too.
func TestHierGDPeerFalsePositiveLatency(t *testing.T) {
	e, cfg := hierGDTestEngine(t)
	net := cfg.Net

	const obj = 8888
	peer := e.proxies[1]
	peer.dir.Add(obj) // the peer's directory lies; its cluster is empty

	src, lat := e.serve(obj, 1, 0, 0, nil)
	if src != netmodel.SrcServer {
		t.Fatalf("served from %v, want server", src)
	}
	want := net.Latency(netmodel.SrcServer) + net.Tp2p
	if math.Abs(lat-want) > 1e-12 {
		t.Errorf("latency = %g, want %g (server latency + wasted peer Tp2p probe)", lat, want)
	}
	if got := peer.dirFP.Value(); got != 1 {
		t.Errorf("peer dirFP = %d, want 1", got)
	}
}

// Both directories lying stacks both wasted probes.
func TestHierGDStackedFalsePositiveLatency(t *testing.T) {
	e, cfg := hierGDTestEngine(t)
	net := cfg.Net

	const obj = 7777
	e.proxies[0].dir.Add(obj)
	e.proxies[1].dir.Add(obj)

	_, lat := e.serve(obj, 1, 0, 0, nil)
	want := net.Latency(netmodel.SrcServer) + 2*net.Tp2p
	if math.Abs(lat-want) > 1e-12 {
		t.Errorf("latency = %g, want %g (server + two wasted probes)", lat, want)
	}
}
