package sim

import "testing"

func TestBasePolicyVariantsRun(t *testing.T) {
	tr := testTrace(t, 80)
	for _, bp := range []BasePolicy{BasePerfectLFU, BaseLFUInCache, BaseLRU, BaseGreedyDual} {
		t.Run(bp.String(), func(t *testing.T) {
			res := run(t, tr, Config{Scheme: SCEC, ProxyCacheFrac: 0.2, BasePolicy: bp, Seed: 1})
			sum := 0
			for _, n := range res.Sources {
				sum += n
			}
			if sum != tr.Len() {
				t.Fatalf("conservation broken under %v", bp)
			}
		})
	}
}

func TestBasePolicyChangesBehaviour(t *testing.T) {
	tr := testTrace(t, 81)
	lfu := run(t, tr, Config{Scheme: NC, ProxyCacheFrac: 0.2, Seed: 1})
	lru := run(t, tr, Config{Scheme: NC, ProxyCacheFrac: 0.2, BasePolicy: BaseLRU, Seed: 1})
	if lfu.AvgLatency == lru.AvgLatency {
		t.Error("LRU and LFU baselines identical — knob inert")
	}
}

func TestLFUInCacheShorthand(t *testing.T) {
	tr := testTrace(t, 82)
	a := run(t, tr, Config{Scheme: NC, ProxyCacheFrac: 0.2, LFUInCache: true, Seed: 1})
	b := run(t, tr, Config{Scheme: NC, ProxyCacheFrac: 0.2, BasePolicy: BaseLFUInCache, Seed: 1})
	if a.AvgLatency != b.AvgLatency {
		t.Error("LFUInCache shorthand diverges from BasePolicy")
	}
}
