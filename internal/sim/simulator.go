package sim

import (
	"fmt"
	"runtime"
	"time"

	"webcache/internal/cache"
	"webcache/internal/netmodel"
	"webcache/internal/obs"
	"webcache/internal/trace"
)

// engine is one scheme's per-request logic.  serve processes a request
// by a member of a proxy's cluster and returns the serving tier plus
// the end-to-end latency charged to the client.  st is the request's
// span trace (nil when the request is unsampled or tracing is off);
// engines append one span per hop, with durations that sum exactly to
// the latency they return — the decomposition cross-check
// (CheckDecomposition) holds them to it.
type engine interface {
	serve(obj trace.ObjectID, size uint32, proxy, member int, st *obs.SpanTrace) (netmodel.Source, float64)
	// finish folds engine-specific telemetry into the result.
	finish(res *Result)
}

// maintainer is implemented by engines with background maintenance
// (Hier-GD's failure injection).
type maintainer interface {
	maintain(reqIdx int, res *Result)
}

// Run replays the trace under the configured scheme.  With cfg.Obs
// set, the run's telemetry is folded into the registry (sim.* metrics)
// and the replay is timed under "sim.run"; the hot loop itself carries
// no instrumentation, so a nil registry costs nothing.
func Run(tr *trace.Trace, cfg Config) (*Result, error) {
	defer cfg.Obs.Timer("sim.run").Start()()
	cfg.fillDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	sz := computeSizing(tr, cfg)
	// With pinned capacities (calibration replays) an empty infinite
	// cache is harmless — the fractional sizing it would break is
	// bypassed.
	if len(cfg.ProxyCapacityOverride) == 0 || len(cfg.ClientCapacityOverride) == 0 {
		for p, n := range sz.infinite {
			if n == 0 {
				return nil, fmt.Errorf("sim: cluster %d has an empty infinite cache (trace too small for %d proxies x %d clients)",
					p, cfg.NumProxies, cfg.ClientsPerCluster)
			}
		}
	}

	var eng engine
	var err error
	switch cfg.Scheme {
	case NC, SC, NCEC, SCEC:
		eng = newLFUEngine(cfg, sz)
	case FC, FCEC:
		eng, err = newFCEngine(tr, cfg, sz)
	case HierGD:
		if cfg.FleetSize > 1 {
			eng, err = newFleetEngine(cfg, sz)
		} else {
			eng, err = newHierGDEngine(cfg, sz)
		}
	case Squirrel:
		eng, err = newSquirrelEngine(cfg, sz)
	default:
		err = fmt.Errorf("sim: unhandled scheme %v", cfg.Scheme)
	}
	if err != nil {
		return nil, err
	}

	res := &Result{
		Scheme:             cfg.Scheme,
		InfiniteCacheSizes: sz.infinite,
		ProxyCapacities:    sz.proxyCap,
		ClientCapacity:     sz.clientCap[0],
	}
	mnt, hasMaintenance := eng.(maintainer)
	// latHist records the per-request latency distribution (1 model
	// latency unit observed as 1ms), so chaos runs can read a simulated
	// p999 the same way live runs read the loadgen histogram.  Nil
	// registry = nil histogram = no-ops.
	latHist := cfg.Obs.Histogram("sim.latency")
	// simClock is the tracer's virtual time base: requests are replayed
	// sequentially, so cumulative charged latency lays sampled traces
	// end-to-end on the Perfetto timeline.
	simClock := 0.0
	// With a registry attached, account the replay loop's allocation
	// rate (sim.alloc.*) from the runtime's malloc counters.  The
	// numbers are process-wide, so they are only exact for a single
	// replay at a time — which is how the alloc gate runs them.  The
	// reads happen outside the loop; an uninstrumented run skips them.
	var memBefore runtime.MemStats
	if cfg.Obs.Enabled() {
		runtime.ReadMemStats(&memBefore)
	}
	for i, r := range tr.Requests {
		if hasMaintenance {
			mnt.maintain(i, res)
		}
		proxy, member := clientMapping(cfg, r.Client)
		st := cfg.Tracer.StartTrace("request", simClock)
		src, lat := eng.serve(r.Object, r.Size, proxy, member, st)
		st.Finish(src.String(), lat)
		simClock += lat
		if i < cfg.WarmupRequests {
			continue // warm the caches without measuring
		}
		latHist.Observe(time.Duration(lat * float64(time.Millisecond)))
		res.Requests++
		res.Sources[src]++
		res.Bytes[src] += uint64(r.Size)
		res.TotalLatency += lat
	}
	if cfg.Obs.Enabled() {
		var memAfter runtime.MemStats
		runtime.ReadMemStats(&memAfter)
		cfg.Obs.Counter("sim.alloc.mallocs").Add(int64(memAfter.Mallocs - memBefore.Mallocs))
		cfg.Obs.Counter("sim.alloc.bytes").Add(int64(memAfter.TotalAlloc - memBefore.TotalAlloc))
	}
	if res.Requests > 0 {
		res.AvgLatency = res.TotalLatency / float64(res.Requests)
	}
	eng.finish(res)
	if cfg.Check != nil {
		// Cumulative across runs sharing one Checker, like the obs
		// registry; per-run deltas are the caller's job.
		res.InvariantChecks = cfg.Check.Checks()
		res.InvariantViolations = cfg.Check.ViolationCount()
	}
	res.PublishMetrics(cfg.Obs)
	return res, nil
}

// lfuEngine implements NC, SC, NC-EC, and SC-EC: per-proxy LFU caches
// (unified with the P2P client-cache tier for the EC variants) with
// optional inter-proxy miss sharing, no replacement coordination.
type lfuEngine struct {
	cfg     Config
	caches  []*tieredCache
	digests []*digest // nil with perfect inter-proxy knowledge
	stale   int
}

func newLFUEngine(cfg Config, sz sizing) *lfuEngine {
	e := &lfuEngine{cfg: cfg, caches: make([]*tieredCache, cfg.NumProxies)}
	ec := cfg.Scheme.UsesClientCaches()
	for p := range e.caches {
		p2pCap := uint64(0)
		if ec {
			p2pCap = sz.p2pCap[p]
		}
		// Non-EC schemes have no client tier: pool with zero extra.
		single := !ec || cfg.SinglePoolEC
		e.caches[p] = newTieredCache(sz.proxyCap[p], p2pCap, cfg.BasePolicy, single,
			cfg.Check, fmt.Sprintf("proxy%d", p))
	}
	if cfg.DigestInterval > 0 && cfg.Scheme.Cooperative() {
		for p := range e.caches {
			c := e.caches[p]
			e.digests = append(e.digests, newDigest(
				int(sz.proxyCap[p]+sz.p2pCap[p]), cfg.DigestFPRate, c.objects))
		}
	}
	return e
}

// maintain rebuilds the inter-proxy digests on their exchange period.
func (e *lfuEngine) maintain(reqIdx int, res *Result) {
	if e.digests == nil || reqIdx == 0 || reqIdx%e.cfg.DigestInterval != 0 {
		return
	}
	res.MaintenanceTicks++
	for _, d := range e.digests {
		d.rebuild()
	}
}

func (e *lfuEngine) serve(obj trace.ObjectID, size uint32, proxy, _ int, st *obs.SpanTrace) (netmodel.Source, float64) {
	net := e.cfg.Net
	c := e.caches[proxy]
	switch c.access(obj) {
	case tierProxy:
		st.Span("proxy.cache", string(netmodel.CompTl), net.Tl)
		return netmodel.SrcLocalProxy, net.Latency(netmodel.SrcLocalProxy)
	case tierClient:
		st.Span("proxy.cache", string(netmodel.CompTl), net.Tl)
		st.Span("p2p.fetch", string(netmodel.CompTp2p), net.Tp2p)
		return netmodel.SrcP2P, net.Latency(netmodel.SrcP2P)
	}
	c.recordMiss(obj)
	st.Span("proxy.cache", string(netmodel.CompTl), net.Tl)
	src := netmodel.SrcServer
	extra := 0.0
	if e.cfg.Scheme.Cooperative() {
		for q := 1; q < len(e.caches); q++ {
			pi := (proxy + q) % len(e.caches)
			peer := e.caches[pi]
			if e.digests != nil && !e.digests[pi].mayContain(obj) {
				continue // digest says the peer cannot serve it
			}
			if peer.contains(obj) {
				peer.touchRemote(obj)
				st.Span("peer.fetch", string(netmodel.CompTc), net.Tc)
				src = netmodel.SrcRemoteProxy
				break
			}
			if e.digests != nil {
				// Stale digest entry: the probe was wasted.
				e.stale++
				st.WastedSpan("peer.probe.stale", string(netmodel.CompTc), net.Tc)
				extra += net.Tc
			}
		}
	}
	if src == netmodel.SrcServer {
		st.Span("origin.fetch", string(netmodel.CompTs), net.Ts)
	}
	// "Once a proxy fetches an object from another proxy, it caches
	// the object locally" (§2) — and likewise for server fetches.
	c.insert(entryFor(obj, size, net.FetchCost(src)))
	return src, net.Latency(src) + extra
}

func (e *lfuEngine) finish(res *Result) {
	res.DigestStaleProbes += e.stale
	for _, c := range e.caches {
		res.ProxyEvictions += c.upperEvictions
	}
	for _, d := range e.digests {
		res.DigestMemoryBytes += d.memoryBytes()
		res.DigestRebuilds += d.rebuilds
	}
}

// entryFor builds a cache entry for a fetched object.
func entryFor(obj trace.ObjectID, size uint32, cost float64) cache.Entry {
	return cache.Entry{Obj: obj, Size: size, Cost: cost}
}
