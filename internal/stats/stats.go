// Package stats provides the summary statistics the experiment layer
// uses for multi-seed replication: means, variance, percentiles, and
// Student-t confidence intervals, stdlib-only.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty reports a statistic over no samples.
var ErrEmpty = errors.New("stats: no samples")

// Mean returns the arithmetic mean.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Variance returns the unbiased sample variance.
func Variance(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, errors.New("stats: variance needs >= 2 samples")
	}
	m, _ := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1), nil
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Percentile returns the p-th percentile (0..100) by linear
// interpolation between closest ranks.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile outside [0,100]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median is the 50th percentile.
func Median(xs []float64) (float64, error) { return Percentile(xs, 50) }

// tCritical95 approximates the two-sided 95% Student-t critical value
// for the given degrees of freedom (exact table for small df, the
// normal limit beyond).
func tCritical95(df int) float64 {
	table := []float64{
		0,                                                             // df=0 unused
		12.706,                                                        // 1
		4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, // 2..10
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, // 11..20
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042, // 21..30
	}
	if df <= 0 {
		return math.NaN()
	}
	if df < len(table) {
		return table[df]
	}
	switch {
	case df < 40:
		return 2.03
	case df < 60:
		return 2.01
	case df < 120:
		return 1.99
	default:
		return 1.96
	}
}

// Summary bundles the replication statistics of one quantity.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	Median float64
	// CI95 is the half-width of the 95% confidence interval of the
	// mean (zero with fewer than two samples).
	CI95 float64
}

// Summarize computes a Summary over the samples.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	m, _ := Mean(xs)
	med, _ := Median(xs)
	s := Summary{N: len(xs), Mean: m, Median: med, Min: xs[0], Max: xs[0]}
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	if len(xs) >= 2 {
		sd, _ := StdDev(xs)
		s.StdDev = sd
		s.CI95 = tCritical95(len(xs)-1) * sd / math.Sqrt(float64(len(xs)))
	}
	return s, nil
}
