package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func close(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if _, err := Mean(nil); err != ErrEmpty {
		t.Error("empty mean accepted")
	}
	m, err := Mean([]float64{1, 2, 3, 4})
	if err != nil || !close(m, 2.5) {
		t.Errorf("mean = %g, %v", m, err)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	if _, err := Variance([]float64{1}); err == nil {
		t.Error("variance of 1 sample accepted")
	}
	v, err := Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil || !close(v, 32.0/7) {
		t.Errorf("variance = %g, %v", v, err)
	}
	sd, _ := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !close(sd, math.Sqrt(32.0/7)) {
		t.Errorf("stddev = %g", sd)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, c := range []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {62.5, 3.5},
	} {
		got, err := Percentile(xs, c.p)
		if err != nil || !close(got, c.want) {
			t.Errorf("P%g = %g, want %g (%v)", c.p, got, c.want, err)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("empty percentile accepted")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("percentile 101 accepted")
	}
	if v, err := Percentile([]float64{7}, 99); err != nil || v != 7 {
		t.Errorf("single-sample percentile = %g, %v", v, err)
	}
	if m, err := Median([]float64{3, 1, 2}); err != nil || m != 2 {
		t.Errorf("median = %g", m)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("input mutated")
	}
}

func TestTCritical(t *testing.T) {
	if !math.IsNaN(tCritical95(0)) {
		t.Error("df=0 should be NaN")
	}
	if !close(tCritical95(1), 12.706) {
		t.Error("df=1 wrong")
	}
	if !close(tCritical95(10), 2.228) {
		t.Error("df=10 wrong")
	}
	if tCritical95(500) != 1.96 {
		t.Error("large df should approach 1.96")
	}
	// Monotone non-increasing.
	prev := tCritical95(1)
	for df := 2; df < 200; df++ {
		cur := tCritical95(df)
		if cur > prev+1e-9 {
			t.Fatalf("t-critical increased at df=%d: %g > %g", df, cur, prev)
		}
		prev = cur
	}
}

func TestSummarize(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Error("empty summarize accepted")
	}
	s, err := Summarize([]float64{5})
	if err != nil || s.N != 1 || s.Mean != 5 || s.CI95 != 0 {
		t.Errorf("single summary = %+v, %v", s, err)
	}
	s, _ = Summarize([]float64{1, 2, 3, 4, 5})
	if s.Min != 1 || s.Max != 5 || !close(s.Mean, 3) || !close(s.Median, 3) {
		t.Errorf("summary = %+v", s)
	}
	if s.CI95 <= 0 {
		t.Error("CI95 should be positive with 5 samples")
	}
}

// Property: the 95% CI of samples from a normal distribution contains
// the true mean roughly 95% of the time (loose bound: >= 80% over 200
// trials to keep the test stable).
func TestPropCICoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const trials = 300
	covered := 0
	for i := 0; i < trials; i++ {
		xs := make([]float64, 10)
		for j := range xs {
			xs[j] = 4 + rng.NormFloat64()
		}
		s, err := Summarize(xs)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(s.Mean-4) <= s.CI95 {
			covered++
		}
	}
	if frac := float64(covered) / trials; frac < 0.85 || frac > 1 {
		t.Errorf("CI coverage %.2f far from nominal 0.95", frac)
	}
}

// Property: Mean lies within [Min, Max] and Summarize agrees with the
// direct computations.
func TestPropSummaryConsistent(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s, err := Summarize(xs)
		if err != nil {
			return false
		}
		m, _ := Mean(xs)
		return s.Mean == m && s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 && s.N == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
