package trace

import (
	"errors"
	"sort"
)

// Trace composition utilities: experiments often need to combine
// workloads (two organizations' logs into one proxy-cluster trace),
// cut them by time window (one business day out of an 18-day UCB
// trace), or interleave synthetic phases.  These helpers keep ids
// disjoint and replay order time-consistent.

// Merge interleaves traces by timestamp into one trace.  Client and
// object ids are remapped into disjoint ranges per input (organization
// A's object 7 is not organization B's object 7), which is what the
// multi-organization experiments need.  Ties replay in input order.
func Merge(traces ...*Trace) (*Trace, error) {
	if len(traces) == 0 {
		return nil, errors.New("trace: nothing to merge")
	}
	var clientBase []ClientID
	var objectBase []ObjectID
	var cb ClientID
	var ob ObjectID
	total := 0
	for _, t := range traces {
		if t == nil || len(t.Requests) == 0 {
			return nil, errors.New("trace: cannot merge an empty trace")
		}
		clientBase = append(clientBase, cb)
		objectBase = append(objectBase, ob)
		cb += ClientID(t.NumClients)
		ob += ObjectID(t.NumObjects)
		total += len(t.Requests)
	}
	out := &Trace{Requests: make([]Request, 0, total)}
	// k-way merge by time, stable across inputs.
	idx := make([]int, len(traces))
	for out.Len() < total {
		best := -1
		for i, t := range traces {
			if idx[i] >= len(t.Requests) {
				continue
			}
			if best == -1 || t.Requests[idx[i]].Time < traces[best].Requests[idx[best]].Time {
				best = i
			}
		}
		r := traces[best].Requests[idx[best]]
		idx[best]++
		out.Requests = append(out.Requests, Request{
			Time:   r.Time,
			Client: clientBase[best] + r.Client,
			Object: objectBase[best] + r.Object,
			Size:   r.Size,
		})
	}
	out.NumClients = int(cb)
	out.NumObjects = int(ob)
	return out, nil
}

// Concat appends traces end to end in time: each subsequent trace's
// timestamps are shifted to start one second after the previous one
// ends.  Ids are shared (same universe), which models phased workloads
// over one population.
func Concat(traces ...*Trace) (*Trace, error) {
	if len(traces) == 0 {
		return nil, errors.New("trace: nothing to concatenate")
	}
	out := &Trace{}
	var offset uint32
	for _, t := range traces {
		if t == nil || len(t.Requests) == 0 {
			return nil, errors.New("trace: cannot concatenate an empty trace")
		}
		start := t.Requests[0].Time
		var last uint32
		for _, r := range t.Requests {
			shifted := r.Time - start + offset
			out.Requests = append(out.Requests, Request{
				Time:   shifted,
				Client: r.Client,
				Object: r.Object,
				Size:   r.Size,
			})
			last = shifted
		}
		offset = last + 1
	}
	out.Recount()
	return out, nil
}

// TimeSlice returns the sub-trace with Time in [from, to) (original
// ids preserved, timestamps rebased to the slice start).
func TimeSlice(t *Trace, from, to uint32) (*Trace, error) {
	if from >= to {
		return nil, errors.New("trace: empty time window")
	}
	// Requests are time-ordered in valid traces: binary search.
	lo := sort.Search(len(t.Requests), func(i int) bool { return t.Requests[i].Time >= from })
	hi := sort.Search(len(t.Requests), func(i int) bool { return t.Requests[i].Time >= to })
	if lo == hi {
		return nil, errors.New("trace: time window contains no requests")
	}
	out := &Trace{
		Requests:   make([]Request, hi-lo),
		NumClients: t.NumClients,
		NumObjects: t.NumObjects,
	}
	for i, r := range t.Requests[lo:hi] {
		out.Requests[i] = Request{
			Time:   r.Time - from,
			Client: r.Client,
			Object: r.Object,
			Size:   r.Size,
		}
	}
	return out, nil
}

// Compact renumbers clients and objects densely (dropping unused ids),
// which shrinks the universe after filtering or slicing.  The mapping
// preserves first-appearance order.
func Compact(t *Trace) *Trace {
	clientMap := make(map[ClientID]ClientID)
	objectMap := make(map[ObjectID]ObjectID)
	out := &Trace{Requests: make([]Request, len(t.Requests))}
	for i, r := range t.Requests {
		c, ok := clientMap[r.Client]
		if !ok {
			c = ClientID(len(clientMap))
			clientMap[r.Client] = c
		}
		o, ok := objectMap[r.Object]
		if !ok {
			o = ObjectID(len(objectMap))
			objectMap[r.Object] = o
		}
		out.Requests[i] = Request{Time: r.Time, Client: c, Object: o, Size: r.Size}
	}
	out.NumClients = len(clientMap)
	out.NumObjects = len(objectMap)
	return out
}
