package trace

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

const squidSample = `1066036250.129    345 10.0.0.5 TCP_MISS/200 8192 GET http://example.com/a - DIRECT/1.2.3.4 text/html
1066036251.000     12 10.0.0.6 TCP_HIT/200 2048 GET http://example.com/b - NONE/- image/png
1066036252.500    500 10.0.0.5 TCP_MISS/200 4096 GET http://EXAMPLE.com/a - DIRECT/1.2.3.4 text/html
1066036253.000     80 10.0.0.7 TCP_MISS/404 512 GET http://example.com/missing - DIRECT/1.2.3.4 text/html
1066036254.000     90 10.0.0.5 TCP_MISS/200 1024 POST http://example.com/form - DIRECT/1.2.3.4 text/html
1066036255.000     70 10.0.0.6 TCP_MISS/301 100 GET http://example.com/c#frag - DIRECT/1.2.3.4 text/html
`

func TestReadSquidBasic(t *testing.T) {
	res, err := ReadSquid(strings.NewReader(squidSample), SquidOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// 6 lines: the 404 and the POST are skipped.
	if res.Lines != 6 || res.Skipped != 2 {
		t.Fatalf("lines=%d skipped=%d", res.Lines, res.Skipped)
	}
	tr := res.Trace
	if tr.Len() != 4 {
		t.Fatalf("requests = %d, want 4", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	// Host case is normalized: EXAMPLE.com/a == example.com/a.
	if len(res.Objects) != 3 {
		t.Fatalf("objects = %v, want 3 distinct", res.Objects)
	}
	if len(res.Clients) != 2 {
		t.Fatalf("clients = %v, want 2 (10.0.0.7's only request was a 404)", res.Clients)
	}
	// Times rebased to the first request.
	if tr.Requests[0].Time != 0 {
		t.Errorf("first time = %d, want 0", tr.Requests[0].Time)
	}
	// 8192 bytes at 1 KB units = 8 units.
	if tr.Requests[0].Size != 8 {
		t.Errorf("size = %d units, want 8", tr.Requests[0].Size)
	}
}

func TestReadSquidUnitSize(t *testing.T) {
	res, err := ReadSquid(strings.NewReader(squidSample), SquidOptions{UnitSize: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Trace.Requests {
		if r.Size != 1 {
			t.Fatalf("unit-size mode produced size %d", r.Size)
		}
	}
}

func TestReadSquidMethodFilter(t *testing.T) {
	res, err := ReadSquid(strings.NewReader(squidSample), SquidOptions{Methods: []string{"POST"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Len() != 1 {
		t.Fatalf("POST-only len = %d, want 1", res.Trace.Len())
	}
}

func TestReadSquidKeepUncacheable(t *testing.T) {
	res, err := ReadSquid(strings.NewReader(squidSample), SquidOptions{KeepUncacheable: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Len() != 5 { // the 404 now counts; the POST still doesn't
		t.Fatalf("len = %d, want 5", res.Trace.Len())
	}
}

func TestReadSquidFragmentStripped(t *testing.T) {
	res, err := ReadSquid(strings.NewReader(squidSample), SquidOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range res.Objects {
		if strings.Contains(u, "#") {
			t.Errorf("fragment survived: %q", u)
		}
	}
}

func TestReadSquidOutOfOrderTimestamps(t *testing.T) {
	log := `100.5 1 c1 TCP_MISS/200 100 GET http://a/1 - D/- t
99.5 1 c2 TCP_MISS/200 100 GET http://a/2 - D/- t
101.0 1 c1 TCP_MISS/200 100 GET http://a/1 - D/- t
`
	res, err := ReadSquid(strings.NewReader(log), SquidOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if err := tr.Validate(); err != nil {
		t.Fatalf("reordered trace invalid: %v", err)
	}
	// The 99.5 entry must replay first.
	if res.Objects[tr.Requests[0].Object] != "http://a/2" {
		t.Errorf("first replayed = %q", res.Objects[tr.Requests[0].Object])
	}
}

func TestReadSquidErrors(t *testing.T) {
	cases := map[string]string{
		"too few fields": "1.0 2 3\n",
		"bad timestamp":  "xx 1 c TCP_MISS/200 10 GET http://a/1 - D/- t\n",
		"bad size":       "1.0 1 c TCP_MISS/200 xx GET http://a/1 - D/- t\n",
		"no usable":      "# only a comment\n",
	}
	for name, in := range cases {
		if _, err := ReadSquid(strings.NewReader(in), SquidOptions{}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCacheableStatus(t *testing.T) {
	cases := map[string]bool{
		"TCP_MISS/200":    true,
		"TCP_HIT/304":     true,
		"TCP_MISS/404":    false,
		"TCP_DENIED/403":  false,
		"TCP_MISS/500":    false,
		"NONE":            false,
		"TCP_MISS/":       false,
		"TCP_MISS/abc":    false,
		"UDP_HIT/000":     false,
		"TCP_REFRESH/302": true,
	}
	for in, want := range cases {
		if got := cacheableStatus(in); got != want {
			t.Errorf("cacheableStatus(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestCanonicalURL(t *testing.T) {
	cases := map[string]string{
		"http://EXAMPLE.com/A/B": "http://example.com/A/B",
		"HTTP://Host.com":        "http://host.com",
		"http://h/x#frag":        "http://h/x",
		"nofragment":             "nofragment",
	}
	for in, want := range cases {
		if got := canonicalURL(in); got != want {
			t.Errorf("canonicalURL(%q) = %q, want %q", in, got, want)
		}
	}
}

// A synthesized large log round-trips into a valid, replayable trace
// that the simulator accepts downstream.
func TestReadSquidSynthesizedLog(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var b strings.Builder
	ts := 1_000_000.0
	for i := 0; i < 5000; i++ {
		ts += rng.Float64()
		fmt.Fprintf(&b, "%.3f %d 10.0.%d.%d TCP_MISS/200 %d GET http://site%d.com/obj%d - DIRECT/- text/html\n",
			ts, rng.Intn(1000), rng.Intn(4), rng.Intn(50), 100+rng.Intn(100000),
			rng.Intn(5), rng.Intn(400))
	}
	res, err := ReadSquid(strings.NewReader(b.String()), SquidOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Len() != 5000 {
		t.Fatalf("len = %d", res.Trace.Len())
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
	st := Analyze(res.Trace)
	if st.DistinctObjs != len(res.Objects) || st.DistinctClients != len(res.Clients) {
		t.Errorf("stats disagree with intern tables: %d/%d vs %d/%d",
			st.DistinctObjs, st.DistinctClients, len(res.Objects), len(res.Clients))
	}
}
