package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Squid native access.log ingestion.  The paper's system sits at the
// proxy, and the natural real-world input for the simulator is a Squid
// access log:
//
//	timestamp elapsed client action/code size method URL ident hierarchy/from type
//	1066036250.129 345 10.0.0.5 TCP_MISS/200 8192 GET http://a/x - DIRECT/1.2.3.4 text/html
//
// ReadSquid converts such a log into a Trace: client addresses and
// URLs are interned to dense ids, sizes are rounded up to cache units,
// and timestamps are rebased to the first request.

// SquidOptions controls the conversion.
type SquidOptions struct {
	// UnitBytes is the cache-unit size; object sizes round up to it.
	// 0 means 1024 (1 KB units).  UnitSize forces Size=1 regardless,
	// matching the paper's equal-size assumption.
	UnitBytes int
	UnitSize  bool
	// Methods restricts ingestion to the given HTTP methods
	// (uppercase); empty means {GET}.
	Methods []string
	// KeepUncacheable also ingests entries whose status code is not
	// 2xx/3xx (they are normally noise for caching studies).
	KeepUncacheable bool
}

func (o *SquidOptions) fill() {
	if o.UnitBytes == 0 {
		o.UnitBytes = 1024
	}
	if len(o.Methods) == 0 {
		o.Methods = []string{"GET"}
	}
}

// SquidResult reports what ReadSquid ingested and skipped.
type SquidResult struct {
	Trace   *Trace
	Lines   int
	Skipped int
	// Clients and Objects map the dense ids back to addresses/URLs
	// (index = id).
	Clients []string
	Objects []string
}

// ReadSquid parses a Squid native-format access log.
func ReadSquid(r io.Reader, opts SquidOptions) (*SquidResult, error) {
	opts.fill()
	methods := make(map[string]bool, len(opts.Methods))
	for _, m := range opts.Methods {
		methods[strings.ToUpper(m)] = true
	}
	res := &SquidResult{Trace: &Trace{}}
	clientIDs := map[string]ClientID{}
	objectIDs := map[string]ObjectID{}

	type raw struct {
		ts     float64
		client ClientID
		object ObjectID
		size   uint32
	}
	var rows []raw

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		res.Lines++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			res.Skipped++
			continue
		}
		f := strings.Fields(text)
		if len(f) < 7 {
			return nil, fmt.Errorf("trace: squid line %d: %d fields, want >= 7", line, len(f))
		}
		ts, err := strconv.ParseFloat(f[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: squid line %d: bad timestamp: %v", line, err)
		}
		if !methods[strings.ToUpper(f[5])] {
			res.Skipped++
			continue
		}
		if !opts.KeepUncacheable && !cacheableStatus(f[3]) {
			res.Skipped++
			continue
		}
		szBytes, err := strconv.ParseInt(f[4], 10, 64)
		if err != nil || szBytes < 0 {
			return nil, fmt.Errorf("trace: squid line %d: bad size %q", line, f[4])
		}
		client, ok := clientIDs[f[2]]
		if !ok {
			client = ClientID(len(res.Clients))
			clientIDs[f[2]] = client
			res.Clients = append(res.Clients, f[2])
		}
		url := canonicalURL(f[6])
		object, ok := objectIDs[url]
		if !ok {
			object = ObjectID(len(res.Objects))
			objectIDs[url] = object
			res.Objects = append(res.Objects, url)
		}
		size := uint32(1)
		if !opts.UnitSize {
			units := (szBytes + int64(opts.UnitBytes) - 1) / int64(opts.UnitBytes)
			if units < 1 {
				units = 1
			}
			size = uint32(units)
		}
		rows = append(rows, raw{ts: ts, client: client, object: object, size: size})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: squid log contained no usable requests (%d lines, %d skipped)", res.Lines, res.Skipped)
	}
	// Logs are written at completion time and can be mildly out of
	// order; the simulator wants replay order.
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].ts < rows[j].ts })
	t0 := rows[0].ts
	for _, rw := range rows {
		res.Trace.Requests = append(res.Trace.Requests, Request{
			Time:   uint32(rw.ts - t0),
			Client: rw.client,
			Object: rw.object,
			Size:   rw.size,
		})
	}
	res.Trace.Recount()
	return res, nil
}

// cacheableStatus accepts Squid action/code fields whose HTTP status
// is 2xx or 3xx.
func cacheableStatus(actionCode string) bool {
	slash := strings.LastIndexByte(actionCode, '/')
	if slash < 0 || slash+1 >= len(actionCode) {
		return false
	}
	code, err := strconv.Atoi(actionCode[slash+1:])
	if err != nil {
		return false
	}
	return code >= 200 && code < 400
}

// canonicalURL strips the fragment and normalizes the scheme/host case
// so the same object is not counted twice.
func canonicalURL(u string) string {
	if i := strings.IndexByte(u, '#'); i >= 0 {
		u = u[:i]
	}
	// Lowercase scheme://host only; paths stay case-sensitive.
	if i := strings.Index(u, "://"); i >= 0 {
		rest := u[i+3:]
		if j := strings.IndexByte(rest, '/'); j >= 0 {
			return strings.ToLower(u[:i+3]+rest[:j]) + rest[j:]
		}
		return strings.ToLower(u)
	}
	return u
}
