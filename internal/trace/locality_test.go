package trace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func reqSeq(objs ...ObjectID) *Trace {
	t := &Trace{}
	for _, o := range objs {
		t.Requests = append(t.Requests, Request{Object: o, Size: 1})
	}
	t.Recount()
	return t
}

func TestAnalyzeLocalityHandComputed(t *testing.T) {
	// Sequence: A B C A B B
	// A@3: distinct since A@0 = {B, C}          -> 2
	// B@4: distinct since B@1 = {C, A}          -> 2
	// B@5: distinct since B@4 = {}              -> 0
	lp := AnalyzeLocality(reqSeq(1, 2, 3, 1, 2, 2))
	if lp.ColdMisses != 3 || lp.Rereferences != 3 {
		t.Fatalf("cold=%d reref=%d", lp.ColdMisses, lp.Rereferences)
	}
	want := []int{0, 2, 2}
	if len(lp.Distances) != 3 {
		t.Fatalf("distances = %v", lp.Distances)
	}
	for i, w := range want {
		if lp.Distances[i] != w {
			t.Fatalf("distances = %v, want %v", lp.Distances, want)
		}
	}
	if lp.MedianDistance != 2 {
		t.Errorf("median = %d", lp.MedianDistance)
	}
}

func TestAnalyzeLocalityRepeatsAreZero(t *testing.T) {
	lp := AnalyzeLocality(reqSeq(5, 5, 5, 5))
	for _, d := range lp.Distances {
		if d != 0 {
			t.Fatalf("consecutive repeats must have distance 0: %v", lp.Distances)
		}
	}
}

// Mattson correspondence: the profile's predicted LRU hit ratio equals
// an actual LRU simulation at every capacity.
func TestLRUHitRatioMatchesSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var objs []ObjectID
	for i := 0; i < 5000; i++ {
		objs = append(objs, ObjectID(rng.Intn(150)))
	}
	tr := reqSeq(objs...)
	lp := AnalyzeLocality(tr)
	for _, capacity := range []int{1, 5, 20, 80, 200} {
		predicted := lp.LRUHitRatio(capacity)
		simulated := simulateLRU(objs, capacity)
		if diff := predicted - simulated; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("capacity %d: predicted %.4f != simulated %.4f", capacity, predicted, simulated)
		}
	}
}

// simulateLRU is a direct LRU simulation used as ground truth.
func simulateLRU(objs []ObjectID, capacity int) float64 {
	pos := map[ObjectID]int{} // object -> index in list
	var list []ObjectID       // front = MRU
	hits := 0
	for _, o := range objs {
		if i, ok := pos[o]; ok {
			hits++
			list = append(list[:i], list[i+1:]...)
		} else if len(list) >= capacity {
			victim := list[len(list)-1]
			list = list[:len(list)-1]
			delete(pos, victim)
		}
		list = append([]ObjectID{o}, list...)
		for j, v := range list {
			pos[v] = j
		}
	}
	return float64(hits) / float64(len(objs))
}

func TestPercentile(t *testing.T) {
	lp := &LocalityProfile{Distances: []int{1, 2, 3, 4, 5}}
	if lp.Percentile(0) != 1 || lp.Percentile(100) != 5 || lp.Percentile(50) != 3 {
		t.Errorf("percentiles wrong: %d %d %d", lp.Percentile(0), lp.Percentile(50), lp.Percentile(100))
	}
	empty := &LocalityProfile{}
	if empty.Percentile(50) != 0 {
		t.Error("empty percentile nonzero")
	}
}

func TestPopularityCurve(t *testing.T) {
	tr := reqSeq(1, 1, 1, 2, 2, 3)
	got := PopularityCurve(tr, 0)
	want := []int{3, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("curve = %v, want %v", got, want)
		}
	}
	if top := PopularityCurve(tr, 2); len(top) != 2 || top[0] != 3 {
		t.Errorf("truncated curve = %v", top)
	}
}

// Property: distances are bounded by the number of distinct objects,
// and cold misses equal the distinct-object count.
func TestPropLocalityBounds(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var objs []ObjectID
		for i := 0; i < int(n)+5; i++ {
			objs = append(objs, ObjectID(rng.Intn(12)))
		}
		tr := reqSeq(objs...)
		lp := AnalyzeLocality(tr)
		distinct := map[ObjectID]bool{}
		for _, o := range objs {
			distinct[o] = true
		}
		if lp.ColdMisses != len(distinct) {
			return false
		}
		for _, d := range lp.Distances {
			if d < 0 || d >= len(distinct) {
				return false
			}
		}
		return lp.ColdMisses+lp.Rereferences == len(objs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// The ProWGen stack knob shows up in the profile: a larger stack gives
// smaller reuse distances is covered in prowgen tests; here verify the
// fenwick internals directly.
func TestFenwick(t *testing.T) {
	f := newFenwick(10)
	f.add(3, 1)
	f.add(7, 2)
	if f.prefix(2) != 0 || f.prefix(3) != 1 || f.prefix(10) != 3 {
		t.Fatalf("prefix sums wrong: %d %d %d", f.prefix(2), f.prefix(3), f.prefix(10))
	}
	if f.total() != 3 {
		t.Fatalf("total = %d", f.total())
	}
	f.add(3, -1)
	if f.total() != 2 {
		t.Fatalf("total after removal = %d", f.total())
	}
}
