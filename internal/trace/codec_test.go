package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func randomTrace(rng *rand.Rand, n int) *Trace {
	t := &Trace{}
	var tm uint32
	for i := 0; i < n; i++ {
		tm += uint32(rng.Intn(10))
		t.Requests = append(t.Requests, Request{
			Time:   tm,
			Client: ClientID(rng.Intn(50)),
			Object: ObjectID(rng.Intn(1000)),
			Size:   uint32(1 + rng.Intn(5)),
		})
	}
	t.Recount()
	return t
}

func TestTextRoundTrip(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(1)), 500)
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Requests, tr.Requests) {
		t.Fatal("text round trip mismatch")
	}
	if got.NumClients != tr.NumClients || got.NumObjects != tr.NumObjects {
		t.Errorf("universe mismatch: %d/%d vs %d/%d", got.NumClients, got.NumObjects, tr.NumClients, tr.NumObjects)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(2)), 500)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatal("binary round trip mismatch")
	}
}

func TestBinaryRoundTripBackwardsTime(t *testing.T) {
	// Backwards time is invalid per Validate but the codec must still
	// round-trip it faithfully (odd-tag escape path).
	tr := &Trace{Requests: []Request{
		{Time: 100, Client: 0, Object: 0, Size: 1},
		{Time: 50, Client: 1, Object: 1, Size: 1},
		{Time: 60, Client: 0, Object: 2, Size: 1},
	}}
	tr.Recount()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Requests, tr.Requests) {
		t.Fatalf("backwards-time round trip mismatch: %+v vs %+v", got.Requests, tr.Requests)
	}
}

func TestReadTextCommentsAndBlank(t *testing.T) {
	in := "# header\n\n0 1 2 3\n# trailing\n1 2 3 4\n"
	tr, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("len = %d, want 2", tr.Len())
	}
}

func TestReadTextErrors(t *testing.T) {
	for name, in := range map[string]string{
		"too few fields": "1 2 3\n",
		"bad time":       "x 1 2 3\n",
		"bad client":     "1 x 2 3\n",
		"bad object":     "1 2 x 3\n",
		"bad size":       "1 2 3 x\n",
	} {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadText accepted %q", name, in)
		}
	}
}

func TestReadBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("NOPExxxx")); err != ErrBadMagic {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestReadBinaryTruncated(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(3)), 50)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	for _, cut := range []int{2, 5, len(b) / 2, len(b) - 1} {
		if _, err := ReadBinary(bytes.NewReader(b[:cut])); err == nil {
			t.Errorf("truncated at %d: no error", cut)
		}
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(4)), 5000)
	var tb, bb bytes.Buffer
	if err := WriteText(&tb, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bb, tr); err != nil {
		t.Fatal(err)
	}
	if bb.Len() >= tb.Len() {
		t.Errorf("binary (%d bytes) not smaller than text (%d bytes)", bb.Len(), tb.Len())
	}
}

// Property: binary encode/decode is the identity on arbitrary valid
// request streams.
func TestPropBinaryRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		tr := randomTrace(rand.New(rand.NewSource(seed)), int(n)%200+1)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: text encode/decode preserves the request stream.
func TestPropTextRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		tr := randomTrace(rand.New(rand.NewSource(seed)), int(n)%100+1)
		var buf bytes.Buffer
		if err := WriteText(&buf, tr); err != nil {
			return false
		}
		got, err := ReadText(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Requests, tr.Requests)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
