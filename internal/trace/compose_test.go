package trace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func timedTrace(times []uint32, clientOffset ClientID) *Trace {
	t := &Trace{}
	for i, tm := range times {
		t.Requests = append(t.Requests, Request{
			Time:   tm,
			Client: clientOffset + ClientID(i%3),
			Object: ObjectID(i % 5),
			Size:   1,
		})
	}
	t.Recount()
	return t
}

func TestMergeInterleavesByTime(t *testing.T) {
	a := timedTrace([]uint32{0, 10, 20}, 0)
	b := timedTrace([]uint32{5, 15, 25}, 0)
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 6 {
		t.Fatalf("len = %d", m.Len())
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("merged trace invalid: %v", err)
	}
	want := []uint32{0, 5, 10, 15, 20, 25}
	for i, r := range m.Requests {
		if r.Time != want[i] {
			t.Fatalf("times = %v at %d, want %v", r.Time, i, want[i])
		}
	}
}

func TestMergeDisjointIDs(t *testing.T) {
	a := timedTrace([]uint32{0, 1, 2, 3, 4}, 0)
	b := timedTrace([]uint32{0, 1, 2, 3, 4}, 0)
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// a's clients are [0,3), b's are remapped to [3,6); objects [0,5)
	// and [5,10).
	if m.NumClients != a.NumClients+b.NumClients {
		t.Errorf("clients = %d", m.NumClients)
	}
	if m.NumObjects != a.NumObjects+b.NumObjects {
		t.Errorf("objects = %d", m.NumObjects)
	}
	seenHigh := false
	for _, r := range m.Requests {
		if r.Object >= ObjectID(a.NumObjects) {
			seenHigh = true
		}
	}
	if !seenHigh {
		t.Error("no remapped ids from the second trace")
	}
}

func TestMergeErrors(t *testing.T) {
	if _, err := Merge(); err == nil {
		t.Error("empty merge accepted")
	}
	if _, err := Merge(timedTrace([]uint32{1}, 0), &Trace{}); err == nil {
		t.Error("empty input accepted")
	}
}

func TestConcatShiftsTime(t *testing.T) {
	a := timedTrace([]uint32{100, 110}, 0)
	b := timedTrace([]uint32{7, 9}, 0)
	c, err := Concat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{0, 10, 11, 13}
	for i, r := range c.Requests {
		if r.Time != want[i] {
			t.Fatalf("times[%d] = %d, want %d", i, r.Time, want[i])
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Concat(); err == nil {
		t.Error("empty concat accepted")
	}
}

func TestTimeSlice(t *testing.T) {
	tr := timedTrace([]uint32{0, 5, 10, 15, 20}, 0)
	s, err := TimeSlice(tr, 5, 16)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Requests[0].Time != 0 || s.Requests[2].Time != 10 {
		t.Errorf("rebased times wrong: %v", s.Requests)
	}
	if _, err := TimeSlice(tr, 16, 16); err == nil {
		t.Error("empty window accepted")
	}
	if _, err := TimeSlice(tr, 21, 30); err == nil {
		t.Error("out-of-range window accepted")
	}
}

func TestCompact(t *testing.T) {
	tr := &Trace{Requests: []Request{
		{Client: 100, Object: 5000, Size: 1},
		{Client: 7, Object: 5000, Size: 1},
		{Client: 100, Object: 9, Size: 1},
	}}
	tr.Recount()
	c := Compact(tr)
	if c.NumClients != 2 || c.NumObjects != 2 {
		t.Fatalf("universe = %d/%d", c.NumClients, c.NumObjects)
	}
	if c.Requests[0].Client != 0 || c.Requests[1].Client != 1 || c.Requests[2].Client != 0 {
		t.Errorf("client mapping wrong: %+v", c.Requests)
	}
	if c.Requests[0].Object != 0 || c.Requests[2].Object != 1 {
		t.Errorf("object mapping wrong: %+v", c.Requests)
	}
}

// Property: merging preserves per-input request multisets (modulo the
// id remapping) and yields a valid, time-ordered trace.
func TestPropMergePreservesCounts(t *testing.T) {
	f := func(seed int64, n1, n2 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func(n int) *Trace {
			var tm uint32
			tr := &Trace{}
			for i := 0; i < n; i++ {
				tm += uint32(rng.Intn(5))
				tr.Requests = append(tr.Requests, Request{
					Time: tm, Client: ClientID(rng.Intn(4)), Object: ObjectID(rng.Intn(9)), Size: 1,
				})
			}
			tr.Recount()
			return tr
		}
		a := mk(int(n1)%50 + 1)
		b := mk(int(n2)%50 + 1)
		m, err := Merge(a, b)
		if err != nil {
			return false
		}
		if m.Len() != a.Len()+b.Len() {
			return false
		}
		return m.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Compact preserves the reference structure (same hit/miss
// pattern under any cache) — verified via identical reuse distances.
func TestPropCompactPreservesLocality(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := &Trace{}
		for i := 0; i < int(n)+5; i++ {
			tr.Requests = append(tr.Requests, Request{
				Client: ClientID(rng.Intn(500) * 3),
				Object: ObjectID(rng.Intn(40) * 17),
				Size:   1,
			})
		}
		tr.Recount()
		a := AnalyzeLocality(tr)
		b := AnalyzeLocality(Compact(tr))
		if a.ColdMisses != b.ColdMisses || len(a.Distances) != len(b.Distances) {
			return false
		}
		for i := range a.Distances {
			if a.Distances[i] != b.Distances[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
