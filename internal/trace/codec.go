package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Two interchange formats are provided:
//
//   - a text format (one "time client object size" line per request,
//     '#' comments) for human inspection and interop with plotting
//     scripts, and
//   - a compact binary format (magic + varint-delta encoding) for
//     storing the large traces the benchmark harness replays.
//
// Both round-trip exactly (property-tested in codec_test.go).

const (
	binaryMagic   = "WCTR"
	binaryVersion = 1
)

// WriteText writes t in the text format.
func WriteText(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# webcache trace: %d requests, %d clients, %d objects\n",
		len(t.Requests), t.NumClients, t.NumObjects)
	for _, r := range t.Requests {
		if _, err := fmt.Fprintf(bw, "%d %d %d %d\n", r.Time, r.Client, r.Object, r.Size); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the text format.  Malformed lines produce an error
// naming the line number.
func ReadText(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	t := &Trace{}
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		f := strings.Fields(s)
		if len(f) != 4 {
			return nil, fmt.Errorf("trace: line %d: want 4 fields, got %d", line, len(f))
		}
		tm, err := strconv.ParseUint(f[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad time: %v", line, err)
		}
		cl, err := strconv.ParseUint(f[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad client: %v", line, err)
		}
		ob, err := strconv.ParseUint(f[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad object: %v", line, err)
		}
		sz, err := strconv.ParseUint(f[3], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad size: %v", line, err)
		}
		t.Requests = append(t.Requests, Request{
			Time:   uint32(tm),
			Client: ClientID(cl),
			Object: ObjectID(ob),
			Size:   uint32(sz),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	t.Recount()
	return t, nil
}

// WriteBinary writes t in the binary format: a magic header, counts,
// then per-request varints with time delta-encoded (times are
// non-decreasing in valid traces, so deltas are small).
func WriteBinary(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	buf := make([]byte, binary.MaxVarintLen64)
	put := func(v uint64) error {
		n := binary.PutUvarint(buf, v)
		_, err := bw.Write(buf[:n])
		return err
	}
	for _, v := range []uint64{binaryVersion, uint64(len(t.Requests)), uint64(t.NumClients), uint64(t.NumObjects)} {
		if err := put(v); err != nil {
			return err
		}
	}
	var prev uint32
	for _, r := range t.Requests {
		var dt uint64
		if r.Time >= prev {
			dt = uint64(r.Time-prev) << 1
		} else {
			// Encode a backwards jump (invalid but preserved) as
			// odd-tagged absolute time so decoding round-trips.
			dt = uint64(r.Time)<<1 | 1
		}
		if err := put(dt); err != nil {
			return err
		}
		prev = r.Time
		if err := put(uint64(r.Client)); err != nil {
			return err
		}
		if err := put(uint64(r.Object)); err != nil {
			return err
		}
		if err := put(uint64(r.Size)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ErrBadMagic reports a stream that is not a binary webcache trace.
var ErrBadMagic = errors.New("trace: bad magic (not a binary webcache trace)")

// batchBufSize is the BatchReader's internal byte buffer: large enough
// that the per-refill cost amortizes to nothing, small enough that a
// reader per open trace file is cheap.
const batchBufSize = 64 * 1024

// BatchReader decodes the binary trace format incrementally: the
// header is validated at construction, then ReadBatch decodes request
// records into a caller-owned slice.  All decoding runs over one
// reused internal byte buffer with slice-based varint reads — no
// per-record I/O calls and no per-record allocations — so a replay
// driver can stream arbitrarily large traces through a fixed-size
// batch.  A BatchReader is not safe for concurrent use.
type BatchReader struct {
	r   io.Reader
	buf []byte
	// buf[pos:lim] holds the undecoded bytes read so far.
	pos, lim int
	eof      bool // r reported EOF; buf holds all remaining bytes

	n, decoded uint64 // declared request count / requests handed out
	prev       uint32 // time-delta decoder state, carried across batches
	numClients int
	numObjects int
}

// NewBatchReader validates the header (magic, version, counts) and
// returns a reader positioned at the first request record.
func NewBatchReader(r io.Reader) (*BatchReader, error) {
	b := &BatchReader{r: r, buf: make([]byte, batchBufSize)}
	if err := b.refill(); err != nil && b.lim == 0 {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if b.lim-b.pos < len(binaryMagic) {
		return nil, fmt.Errorf("trace: reading magic: %w", io.ErrUnexpectedEOF)
	}
	if string(b.buf[b.pos:b.pos+len(binaryMagic)]) != binaryMagic {
		return nil, ErrBadMagic
	}
	b.pos += len(binaryMagic)
	ver, err := b.uvarint()
	if err != nil {
		return nil, err
	}
	if ver != binaryVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	if b.n, err = b.uvarint(); err != nil {
		return nil, err
	}
	nc, err := b.uvarint()
	if err != nil {
		return nil, err
	}
	no, err := b.uvarint()
	if err != nil {
		return nil, err
	}
	const maxRequests = 1 << 31
	if b.n > maxRequests {
		return nil, fmt.Errorf("trace: implausible request count %d", b.n)
	}
	b.numClients = int(nc)
	b.numObjects = int(no)
	return b, nil
}

// Len is the total request count the header declares (untrusted until
// the stream delivers it — a short stream fails ReadBatch with an
// error, so callers should still clamp pre-allocations).
func (b *BatchReader) Len() int { return int(b.n) }

// Remaining is how many declared requests ReadBatch has not yet
// delivered.
func (b *BatchReader) Remaining() int { return int(b.n - b.decoded) }

// NumClients is the header's client count.
func (b *BatchReader) NumClients() int { return b.numClients }

// NumObjects is the header's object count.
func (b *BatchReader) NumObjects() int { return b.numObjects }

// refill slides the undecoded tail to the front of the buffer and
// reads as much as the source will give.
func (b *BatchReader) refill() error {
	if b.eof {
		return io.ErrUnexpectedEOF
	}
	copy(b.buf, b.buf[b.pos:b.lim])
	b.lim -= b.pos
	b.pos = 0
	for b.lim < len(b.buf) {
		n, err := b.r.Read(b.buf[b.lim:])
		b.lim += n
		if err == io.EOF {
			b.eof = true
			return nil
		}
		if err != nil {
			return err
		}
		if n > 0 {
			return nil
		}
	}
	return nil
}

// uvarint decodes one varint from the buffered window, refilling when
// the window runs dry.
func (b *BatchReader) uvarint() (uint64, error) {
	for {
		v, w := binary.Uvarint(b.buf[b.pos:b.lim])
		if w > 0 {
			b.pos += w
			return v, nil
		}
		if w < 0 {
			return 0, fmt.Errorf("trace: varint overflows 64 bits")
		}
		// Window too short for a full varint: pull more bytes.  At EOF
		// the varint can never complete.
		if b.eof {
			if b.pos == b.lim {
				return 0, io.EOF
			}
			return 0, io.ErrUnexpectedEOF
		}
		if err := b.refill(); err != nil {
			return 0, err
		}
	}
}

// ReadBatch decodes up to len(dst) request records into dst and
// returns how many it decoded.  It returns io.EOF once all declared
// requests have been delivered; a stream ending early returns the
// decode error positioned at the failing record.
func (b *BatchReader) ReadBatch(dst []Request) (int, error) {
	if b.decoded == b.n {
		return 0, io.EOF
	}
	for i := range dst {
		if b.decoded == b.n {
			return i, nil
		}
		dt, err := b.uvarint()
		if err != nil {
			return i, fmt.Errorf("trace: request %d: %w", b.decoded, err)
		}
		var tm uint32
		if dt&1 == 1 {
			tm = uint32(dt >> 1)
		} else {
			tm = b.prev + uint32(dt>>1)
		}
		b.prev = tm
		cl, err := b.uvarint()
		if err != nil {
			return i, fmt.Errorf("trace: request %d: %w", b.decoded, err)
		}
		ob, err := b.uvarint()
		if err != nil {
			return i, fmt.Errorf("trace: request %d: %w", b.decoded, err)
		}
		sz, err := b.uvarint()
		if err != nil {
			return i, fmt.Errorf("trace: request %d: %w", b.decoded, err)
		}
		dst[i] = Request{
			Time:   tm,
			Client: ClientID(cl),
			Object: ObjectID(ob),
			Size:   uint32(sz),
		}
		b.decoded++
	}
	return len(dst), nil
}

// ReadBinary parses the binary format written by WriteBinary.  It is a
// thin wrapper over BatchReader that materializes the whole trace;
// streaming consumers should use BatchReader directly.
func ReadBinary(r io.Reader) (*Trace, error) {
	br, err := NewBatchReader(r)
	if err != nil {
		return nil, err
	}
	// The count is untrusted until the stream actually delivers it, so
	// clamp the pre-allocation: a short stream claiming a huge count
	// must fail with a read error, not a giant allocation.
	pre := br.Len()
	if pre > 1<<16 {
		pre = 1 << 16
	}
	t := &Trace{
		Requests:   make([]Request, 0, pre),
		NumClients: br.NumClients(),
		NumObjects: br.NumObjects(),
	}
	for br.Remaining() > 0 {
		// Decode directly into the tail of the accumulating slice; the
		// batch size is however much spare capacity append growth left.
		if cap(t.Requests) == len(t.Requests) {
			t.Requests = append(t.Requests, Request{})[:len(t.Requests)]
		}
		n, err := br.ReadBatch(t.Requests[len(t.Requests):cap(t.Requests)])
		t.Requests = t.Requests[:len(t.Requests)+n]
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}
