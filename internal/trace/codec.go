package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Two interchange formats are provided:
//
//   - a text format (one "time client object size" line per request,
//     '#' comments) for human inspection and interop with plotting
//     scripts, and
//   - a compact binary format (magic + varint-delta encoding) for
//     storing the large traces the benchmark harness replays.
//
// Both round-trip exactly (property-tested in codec_test.go).

const (
	binaryMagic   = "WCTR"
	binaryVersion = 1
)

// WriteText writes t in the text format.
func WriteText(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# webcache trace: %d requests, %d clients, %d objects\n",
		len(t.Requests), t.NumClients, t.NumObjects)
	for _, r := range t.Requests {
		if _, err := fmt.Fprintf(bw, "%d %d %d %d\n", r.Time, r.Client, r.Object, r.Size); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the text format.  Malformed lines produce an error
// naming the line number.
func ReadText(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	t := &Trace{}
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		f := strings.Fields(s)
		if len(f) != 4 {
			return nil, fmt.Errorf("trace: line %d: want 4 fields, got %d", line, len(f))
		}
		tm, err := strconv.ParseUint(f[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad time: %v", line, err)
		}
		cl, err := strconv.ParseUint(f[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad client: %v", line, err)
		}
		ob, err := strconv.ParseUint(f[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad object: %v", line, err)
		}
		sz, err := strconv.ParseUint(f[3], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad size: %v", line, err)
		}
		t.Requests = append(t.Requests, Request{
			Time:   uint32(tm),
			Client: ClientID(cl),
			Object: ObjectID(ob),
			Size:   uint32(sz),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	t.Recount()
	return t, nil
}

// WriteBinary writes t in the binary format: a magic header, counts,
// then per-request varints with time delta-encoded (times are
// non-decreasing in valid traces, so deltas are small).
func WriteBinary(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	buf := make([]byte, binary.MaxVarintLen64)
	put := func(v uint64) error {
		n := binary.PutUvarint(buf, v)
		_, err := bw.Write(buf[:n])
		return err
	}
	for _, v := range []uint64{binaryVersion, uint64(len(t.Requests)), uint64(t.NumClients), uint64(t.NumObjects)} {
		if err := put(v); err != nil {
			return err
		}
	}
	var prev uint32
	for _, r := range t.Requests {
		var dt uint64
		if r.Time >= prev {
			dt = uint64(r.Time-prev) << 1
		} else {
			// Encode a backwards jump (invalid but preserved) as
			// odd-tagged absolute time so decoding round-trips.
			dt = uint64(r.Time)<<1 | 1
		}
		if err := put(dt); err != nil {
			return err
		}
		prev = r.Time
		if err := put(uint64(r.Client)); err != nil {
			return err
		}
		if err := put(uint64(r.Object)); err != nil {
			return err
		}
		if err := put(uint64(r.Size)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ErrBadMagic reports a stream that is not a binary webcache trace.
var ErrBadMagic = errors.New("trace: bad magic (not a binary webcache trace)")

// ReadBinary parses the binary format written by WriteBinary.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, ErrBadMagic
	}
	get := func() (uint64, error) { return binary.ReadUvarint(br) }
	ver, err := get()
	if err != nil {
		return nil, err
	}
	if ver != binaryVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	n, err := get()
	if err != nil {
		return nil, err
	}
	nc, err := get()
	if err != nil {
		return nil, err
	}
	no, err := get()
	if err != nil {
		return nil, err
	}
	const maxRequests = 1 << 31
	if n > maxRequests {
		return nil, fmt.Errorf("trace: implausible request count %d", n)
	}
	// The count is untrusted until the stream actually delivers n
	// requests, so clamp the pre-allocation: a short stream claiming a
	// huge count must fail with a read error, not a giant allocation.
	pre := n
	if pre > 1<<16 {
		pre = 1 << 16
	}
	t := &Trace{
		Requests:   make([]Request, 0, pre),
		NumClients: int(nc),
		NumObjects: int(no),
	}
	var prev uint32
	for i := uint64(0); i < n; i++ {
		dt, err := get()
		if err != nil {
			return nil, fmt.Errorf("trace: request %d: %w", i, err)
		}
		var tm uint32
		if dt&1 == 1 {
			tm = uint32(dt >> 1)
		} else {
			tm = prev + uint32(dt>>1)
		}
		prev = tm
		cl, err := get()
		if err != nil {
			return nil, err
		}
		ob, err := get()
		if err != nil {
			return nil, err
		}
		sz, err := get()
		if err != nil {
			return nil, err
		}
		t.Requests = append(t.Requests, Request{
			Time:   tm,
			Client: ClientID(cl),
			Object: ObjectID(ob),
			Size:   uint32(sz),
		})
	}
	return t, nil
}
