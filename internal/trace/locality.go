package trace

import "sort"

// Temporal-locality profiling.  The LRU stack distance (reuse
// distance) of a reference is the number of *distinct* objects touched
// since the previous reference to the same object; the distribution of
// stack distances fully determines the hit ratio of an LRU cache of
// any size, and is the standard way to characterize the temporal
// locality that ProWGen's stack model injects (Figure 4's knob).
//
// The computation is the classical Bennett–Kruskal algorithm: a
// Fenwick (binary indexed) tree over reference positions counts, in
// O(log n), how many distinct objects were touched since the last
// reference.

// fenwick is a binary indexed tree over positions 1..n.
type fenwick struct {
	tree []int
}

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]int, n+1)} }

// add increments position i (1-based) by delta.
func (f *fenwick) add(i, delta int) {
	for ; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

// prefix returns the sum of positions 1..i.
func (f *fenwick) prefix(i int) int {
	s := 0
	for ; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// total returns the sum over all positions.
func (f *fenwick) total() int { return f.prefix(len(f.tree) - 1) }

// LocalityProfile summarizes a trace's reuse-distance distribution.
type LocalityProfile struct {
	// Rereferences is the number of non-first references.
	Rereferences int
	// ColdMisses counts first references (infinite distance).
	ColdMisses int
	// Distances holds one reuse distance per re-reference, sorted
	// ascending (for percentile queries and CDF export).
	Distances []int
	// MeanDistance and MedianDistance summarize the distribution.
	MeanDistance   float64
	MedianDistance int
}

// Percentile returns the p-th percentile (0..100) of reuse distances.
func (lp *LocalityProfile) Percentile(p float64) int {
	if len(lp.Distances) == 0 {
		return 0
	}
	idx := int(p / 100 * float64(len(lp.Distances)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(lp.Distances) {
		idx = len(lp.Distances) - 1
	}
	return lp.Distances[idx]
}

// LRUHitRatio predicts the hit ratio of a single LRU cache holding
// `capacity` objects directly from the profile (Mattson's stack
// analysis): a reference hits iff its reuse distance is < capacity.
func (lp *LocalityProfile) LRUHitRatio(capacity int) float64 {
	total := lp.Rereferences + lp.ColdMisses
	if total == 0 {
		return 0
	}
	// Distances sorted ascending: count entries < capacity.
	hits := sort.SearchInts(lp.Distances, capacity)
	return float64(hits) / float64(total)
}

// AnalyzeLocality computes the reuse-distance profile of a trace.
func AnalyzeLocality(t *Trace) *LocalityProfile {
	n := len(t.Requests)
	bit := newFenwick(n)
	lastPos := make(map[ObjectID]int, t.NumObjects) // 1-based position of last reference
	lp := &LocalityProfile{}
	for i, r := range t.Requests {
		pos := i + 1
		if p, seen := lastPos[r.Object]; seen {
			// Distinct objects referenced after position p.
			dist := bit.total() - bit.prefix(p)
			lp.Distances = append(lp.Distances, dist)
			lp.Rereferences++
			bit.add(p, -1)
		} else {
			lp.ColdMisses++
		}
		bit.add(pos, 1)
		lastPos[r.Object] = pos
	}
	sort.Ints(lp.Distances)
	if len(lp.Distances) > 0 {
		sum := 0
		for _, d := range lp.Distances {
			sum += d
		}
		lp.MeanDistance = float64(sum) / float64(len(lp.Distances))
		lp.MedianDistance = lp.Distances[len(lp.Distances)/2]
	}
	return lp
}

// PopularityCurve returns per-rank reference counts (rank 0 = most
// popular), truncated to maxRanks (0 = all), for popularity plots and
// Zipf fitting externally.
func PopularityCurve(t *Trace, maxRanks int) []int {
	freq := make(map[ObjectID]int, t.NumObjects)
	for _, r := range t.Requests {
		freq[r.Object]++
	}
	counts := make([]int, 0, len(freq))
	for _, f := range freq {
		counts = append(counts, f)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	if maxRanks > 0 && len(counts) > maxRanks {
		counts = counts[:maxRanks]
	}
	return counts
}
