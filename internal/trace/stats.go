package trace

import (
	"fmt"
	"math"
	"sort"
)

// Stats summarizes the first-order characteristics of a trace that the
// paper's workload-sensitivity experiments manipulate: object-count,
// one-timer fraction, popularity skew, and sharing.
type Stats struct {
	Requests        int     // total references
	DistinctObjs    int     // distinct objects referenced
	OneTimers       int     // objects referenced exactly once
	OneTimerFrac    float64 // OneTimers / DistinctObjs
	MultiAccessed   int     // objects referenced more than once
	DistinctClients int     // distinct clients appearing
	MaxFreq         int     // references to the most popular object
	ZipfAlpha       float64 // least-squares Zipf exponent estimate
	MeanSharing     float64 // mean distinct clients per multi-accessed object
}

// Analyze computes Stats over a trace in one pass (plus a sort for the
// Zipf fit).
func Analyze(t *Trace) Stats {
	freq := make(map[ObjectID]int, t.NumObjects)
	clients := make(map[ClientID]struct{}, t.NumClients)
	objClients := make(map[ObjectID]map[ClientID]struct{})
	for _, r := range t.Requests {
		freq[r.Object]++
		clients[r.Client] = struct{}{}
		cs := objClients[r.Object]
		if cs == nil {
			cs = make(map[ClientID]struct{}, 2)
			objClients[r.Object] = cs
		}
		cs[r.Client] = struct{}{}
	}
	s := Stats{
		Requests:        len(t.Requests),
		DistinctObjs:    len(freq),
		DistinctClients: len(clients),
	}
	var sharingSum, sharingN float64
	counts := make([]int, 0, len(freq))
	for o, f := range freq {
		counts = append(counts, f)
		if f == 1 {
			s.OneTimers++
		} else {
			s.MultiAccessed++
			sharingSum += float64(len(objClients[o]))
			sharingN++
		}
		if f > s.MaxFreq {
			s.MaxFreq = f
		}
	}
	if s.DistinctObjs > 0 {
		s.OneTimerFrac = float64(s.OneTimers) / float64(s.DistinctObjs)
	}
	if sharingN > 0 {
		s.MeanSharing = sharingSum / sharingN
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	s.ZipfAlpha = fitZipf(counts)
	return s
}

// fitZipf estimates the Zipf exponent alpha by least squares on
// log(freq) vs log(rank) over the head of the popularity distribution
// (the head is where Zipf behaviour lives; the one-timer tail is flat
// by construction and would bias the fit).
func fitZipf(desc []int) float64 {
	n := len(desc)
	if n < 10 {
		return 0
	}
	// Fit on the top 20% of ranks, at least 10 and at most 10k points.
	m := n / 5
	if m < 10 {
		m = 10
	}
	if m > n {
		m = n
	}
	if m > 10000 {
		m = 10000
	}
	var sx, sy, sxx, sxy float64
	for i := 0; i < m; i++ {
		x := math.Log(float64(i + 1))
		y := math.Log(float64(desc[i]))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	fm := float64(m)
	den := fm*sxx - sx*sx
	if den == 0 {
		return 0
	}
	slope := (fm*sxy - sx*sy) / den
	return -slope
}

// InfiniteCacheSize implements the paper's sizing rule (§5.1): the
// infinite cache size of a client cluster is the number of distinct
// objects accessed more than once by the clients of that cluster.
// belongsTo maps a client to its cluster; the function returns the size
// per cluster index (length = number of clusters).
func InfiniteCacheSize(t *Trace, clusters int, belongsTo func(ClientID) int) []int {
	type key struct {
		cluster int
		obj     ObjectID
	}
	freq := make(map[key]int)
	for _, r := range t.Requests {
		c := belongsTo(r.Client)
		if c < 0 || c >= clusters {
			continue
		}
		freq[key{c, r.Object}]++
	}
	out := make([]int, clusters)
	for k, f := range freq {
		if f > 1 {
			out[k.cluster]++
		}
	}
	return out
}

// InfiniteCacheUnits generalizes InfiniteCacheSize to variable object
// sizes: per cluster, the total cache units needed to hold every
// object accessed more than once by that cluster's clients.  For
// unit-size traces it equals InfiniteCacheSize.
func InfiniteCacheUnits(t *Trace, clusters int, belongsTo func(ClientID) int) []uint64 {
	type key struct {
		cluster int
		obj     ObjectID
	}
	freq := make(map[key]int)
	size := make(map[ObjectID]uint32, t.NumObjects)
	for _, r := range t.Requests {
		c := belongsTo(r.Client)
		if c < 0 || c >= clusters {
			continue
		}
		freq[key{c, r.Object}]++
		size[r.Object] = r.Size
	}
	out := make([]uint64, clusters)
	for k, f := range freq {
		if f > 1 {
			out[k.cluster] += uint64(size[k.obj])
		}
	}
	return out
}

// String renders the stats as a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("reqs=%d objs=%d one-timers=%.1f%% clients=%d alpha=%.2f maxfreq=%d sharing=%.2f",
		s.Requests, s.DistinctObjs, 100*s.OneTimerFrac, s.DistinctClients, s.ZipfAlpha, s.MaxFreq, s.MeanSharing)
}
