package trace

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// Fingerprint hashes a trace's full content (every request's client,
// object, size, and time, plus the id-universe bounds) into a short
// stable string, so run manifests can assert that two runs replayed
// the same workload.  FNV-1a over the canonical little-endian record
// encoding; identical traces fingerprint identically across platforms.
func Fingerprint(t *Trace) string {
	h := fnv.New64a()
	var buf [20]byte
	binary.LittleEndian.PutUint64(buf[0:8], uint64(t.NumClients))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(t.NumObjects))
	h.Write(buf[:16])
	for _, r := range t.Requests {
		binary.LittleEndian.PutUint32(buf[0:4], uint32(r.Client))
		binary.LittleEndian.PutUint64(buf[4:12], uint64(r.Object))
		binary.LittleEndian.PutUint32(buf[12:16], r.Size)
		binary.LittleEndian.PutUint32(buf[16:20], r.Time)
		h.Write(buf[:])
	}
	return fmt.Sprintf("fnv1a:%016x", h.Sum64())
}
