package trace

import (
	"bytes"
	"testing"
)

func sameTrace(t *testing.T, label string, a, b *Trace) {
	t.Helper()
	if len(a.Requests) != len(b.Requests) {
		t.Fatalf("%s: %d requests became %d", label, len(a.Requests), len(b.Requests))
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("%s: request %d changed: %+v -> %+v", label, i, a.Requests[i], b.Requests[i])
		}
	}
	if a.NumClients != b.NumClients || a.NumObjects != b.NumObjects {
		t.Fatalf("%s: counts changed: (%d,%d) -> (%d,%d)",
			label, a.NumClients, a.NumObjects, b.NumClients, b.NumObjects)
	}
}

// FuzzTextCodec feeds arbitrary bytes to the text parser.  Malformed
// input must error (never panic); any trace the parser accepts must
// round-trip exactly through both the text and the binary codec.
func FuzzTextCodec(f *testing.F) {
	f.Add([]byte("# comment\n1 0 42 1\n2 1 42 1\n5 0 7 3\n"))
	f.Add([]byte("0 0 0 0\n"))
	f.Add([]byte("1 2 3\n"))
	f.Add([]byte("4294967295 4294967295 18446744073709551615 4294967295\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadText(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, tr); err != nil {
			t.Fatal(err)
		}
		back, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("re-reading our own text output: %v", err)
		}
		sameTrace(t, "text", tr, back)

		buf.Reset()
		if err := WriteBinary(&buf, tr); err != nil {
			t.Fatal(err)
		}
		bin, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("re-reading our own binary output: %v", err)
		}
		sameTrace(t, "binary", tr, bin)
	})
}

// FuzzBinaryCodec feeds arbitrary bytes to the binary decoder.  The
// decoder must reject junk with an error — never panic or allocate
// unboundedly off an untrusted count — and any stream it accepts must
// round-trip exactly.
func FuzzBinaryCodec(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, &Trace{
		Requests: []Request{
			{Time: 1, Client: 0, Object: 42, Size: 1},
			{Time: 2, Client: 1, Object: 42, Size: 1},
			{Time: 2, Client: 0, Object: 7, Size: 3},
		},
		NumClients: 2,
		NumObjects: 43,
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("WCTR"))
	// A short stream claiming 2^30 requests: must fail on read, not
	// pre-allocate gigabytes.
	f.Add([]byte{'W', 'C', 'T', 'R', 1, 0x80, 0x80, 0x80, 0x80, 4, 1, 1})
	f.Add([]byte("not a trace at all"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteBinary(&out, tr); err != nil {
			t.Fatal(err)
		}
		back, err := ReadBinary(&out)
		if err != nil {
			t.Fatalf("re-reading our own binary output: %v", err)
		}
		sameTrace(t, "binary", tr, back)
	})
}
