// Package trace defines the request-trace model that drives the
// cooperative caching simulator, together with text and binary codecs
// and first-order trace statistics.
//
// A trace is an ordered stream of (time, client, object, size)
// references.  The paper's simulator (§5.1) is trace-driven: it replays
// either synthetic ProWGen workloads or the UCB Home-IP trace.  The
// schemes only observe the reference stream, so this package is the
// single point of truth for what a "workload" is.
package trace

import (
	"errors"
	"fmt"
)

// ObjectID identifies a distinct Web object.  In real deployments this
// is the SHA-1 of the URL; in the simulator object identity is already
// canonical, and the Pastry layer derives 128-bit ids from it on demand.
type ObjectID uint64

// ClientID identifies a client (browser) machine.  Clients are assigned
// to proxies by the simulator (client c belongs to proxy c mod P under
// the paper's "statistically identical populations" assumption).
type ClientID uint32

// Request is one HTTP reference in a trace.
type Request struct {
	// Time is seconds since the start of the trace.  The caching
	// schemes themselves are latency-model driven and ignore absolute
	// time; it exists for trace realism (UCB day/night modulation) and
	// for time-windowed statistics.
	Time uint32
	// Client is the issuing client.
	Client ClientID
	// Object is the referenced object.
	Object ObjectID
	// Size is the object size in cache units.  The paper assumes
	// unit-size objects (§5.1); generators emit Size==1 by default but
	// the policies support variable sizes.
	Size uint32
}

// Trace is an in-memory request trace.
type Trace struct {
	// Requests in replay order.
	Requests []Request
	// NumClients is one more than the largest ClientID (the client
	// universe size the generator targeted).
	NumClients int
	// NumObjects is one more than the largest ObjectID referenced.
	NumObjects int
}

// Validate checks internal consistency: non-empty, client/object ids in
// range, sizes positive, and time non-decreasing.
func (t *Trace) Validate() error {
	if len(t.Requests) == 0 {
		return errors.New("trace: empty trace")
	}
	if t.NumClients <= 0 || t.NumObjects <= 0 {
		return fmt.Errorf("trace: bad universe: clients=%d objects=%d", t.NumClients, t.NumObjects)
	}
	var prev uint32
	for i, r := range t.Requests {
		if int(r.Client) >= t.NumClients {
			return fmt.Errorf("trace: request %d: client %d out of range [0,%d)", i, r.Client, t.NumClients)
		}
		if int(r.Object) >= t.NumObjects {
			return fmt.Errorf("trace: request %d: object %d out of range [0,%d)", i, r.Object, t.NumObjects)
		}
		if r.Size == 0 {
			return fmt.Errorf("trace: request %d: zero size", i)
		}
		if r.Time < prev {
			return fmt.Errorf("trace: request %d: time goes backwards (%d < %d)", i, r.Time, prev)
		}
		prev = r.Time
	}
	return nil
}

// Recount recomputes NumClients and NumObjects from the request stream.
// Generators call it after assembly; codecs call it after decode.
func (t *Trace) Recount() {
	maxC, maxO := -1, -1
	for _, r := range t.Requests {
		if int(r.Client) > maxC {
			maxC = int(r.Client)
		}
		if int(r.Object) > maxO {
			maxO = int(r.Object)
		}
	}
	t.NumClients = maxC + 1
	t.NumObjects = maxO + 1
}

// Slice returns a shallow sub-trace of requests [lo, hi).
func (t *Trace) Slice(lo, hi int) *Trace {
	return &Trace{
		Requests:   t.Requests[lo:hi],
		NumClients: t.NumClients,
		NumObjects: t.NumObjects,
	}
}

// FilterClients returns a new trace containing only requests from
// clients for which keep returns true.  Times and ids are preserved.
func (t *Trace) FilterClients(keep func(ClientID) bool) *Trace {
	out := &Trace{NumClients: t.NumClients, NumObjects: t.NumObjects}
	for _, r := range t.Requests {
		if keep(r.Client) {
			out.Requests = append(out.Requests, r)
		}
	}
	return out
}

// Len returns the number of requests.
func (t *Trace) Len() int { return len(t.Requests) }
