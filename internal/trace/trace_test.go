package trace

import (
	"math"
	"testing"
)

func mkTrace(reqs ...Request) *Trace {
	t := &Trace{Requests: reqs}
	t.Recount()
	return t
}

func TestRecount(t *testing.T) {
	tr := mkTrace(
		Request{Time: 0, Client: 3, Object: 7, Size: 1},
		Request{Time: 1, Client: 1, Object: 2, Size: 1},
	)
	if tr.NumClients != 4 {
		t.Errorf("NumClients = %d, want 4", tr.NumClients)
	}
	if tr.NumObjects != 8 {
		t.Errorf("NumObjects = %d, want 8", tr.NumObjects)
	}
}

func TestValidateOK(t *testing.T) {
	tr := mkTrace(
		Request{Time: 0, Client: 0, Object: 0, Size: 1},
		Request{Time: 0, Client: 1, Object: 1, Size: 2},
		Request{Time: 5, Client: 0, Object: 0, Size: 1},
	)
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := map[string]*Trace{
		"empty": {NumClients: 1, NumObjects: 1},
		"client out of range": {
			Requests:   []Request{{Client: 5, Object: 0, Size: 1}},
			NumClients: 2, NumObjects: 1,
		},
		"object out of range": {
			Requests:   []Request{{Client: 0, Object: 9, Size: 1}},
			NumClients: 1, NumObjects: 2,
		},
		"zero size": {
			Requests:   []Request{{Client: 0, Object: 0, Size: 0}},
			NumClients: 1, NumObjects: 1,
		},
		"time backwards": {
			Requests: []Request{
				{Time: 5, Client: 0, Object: 0, Size: 1},
				{Time: 4, Client: 0, Object: 0, Size: 1},
			},
			NumClients: 1, NumObjects: 1,
		},
		"bad universe": {
			Requests:   []Request{{Client: 0, Object: 0, Size: 1}},
			NumClients: 0, NumObjects: 1,
		},
	}
	for name, tr := range cases {
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid trace", name)
		}
	}
}

func TestSlice(t *testing.T) {
	tr := mkTrace(
		Request{Time: 0, Client: 0, Object: 0, Size: 1},
		Request{Time: 1, Client: 1, Object: 1, Size: 1},
		Request{Time: 2, Client: 2, Object: 2, Size: 1},
	)
	s := tr.Slice(1, 3)
	if s.Len() != 2 {
		t.Fatalf("Slice len = %d, want 2", s.Len())
	}
	if s.Requests[0].Client != 1 {
		t.Errorf("Slice[0].Client = %d, want 1", s.Requests[0].Client)
	}
	if s.NumClients != tr.NumClients || s.NumObjects != tr.NumObjects {
		t.Error("Slice must preserve universe sizes")
	}
}

func TestFilterClients(t *testing.T) {
	tr := mkTrace(
		Request{Client: 0, Object: 0, Size: 1},
		Request{Client: 1, Object: 1, Size: 1},
		Request{Client: 0, Object: 2, Size: 1},
		Request{Client: 2, Object: 3, Size: 1},
	)
	f := tr.FilterClients(func(c ClientID) bool { return c == 0 })
	if f.Len() != 2 {
		t.Fatalf("filtered len = %d, want 2", f.Len())
	}
	for _, r := range f.Requests {
		if r.Client != 0 {
			t.Errorf("filtered trace contains client %d", r.Client)
		}
	}
}

func TestAnalyze(t *testing.T) {
	// Objects: 0 accessed 3x by clients {0,1}; 1 accessed 1x; 2 accessed 2x by client 2.
	tr := mkTrace(
		Request{Client: 0, Object: 0, Size: 1},
		Request{Client: 1, Object: 0, Size: 1},
		Request{Client: 0, Object: 0, Size: 1},
		Request{Client: 1, Object: 1, Size: 1},
		Request{Client: 2, Object: 2, Size: 1},
		Request{Client: 2, Object: 2, Size: 1},
	)
	s := Analyze(tr)
	if s.Requests != 6 {
		t.Errorf("Requests = %d", s.Requests)
	}
	if s.DistinctObjs != 3 {
		t.Errorf("DistinctObjs = %d", s.DistinctObjs)
	}
	if s.OneTimers != 1 {
		t.Errorf("OneTimers = %d", s.OneTimers)
	}
	if s.MultiAccessed != 2 {
		t.Errorf("MultiAccessed = %d", s.MultiAccessed)
	}
	if s.DistinctClients != 3 {
		t.Errorf("DistinctClients = %d", s.DistinctClients)
	}
	if s.MaxFreq != 3 {
		t.Errorf("MaxFreq = %d", s.MaxFreq)
	}
	// Object 0 shared by 2 clients, object 2 by 1 → mean sharing 1.5.
	if s.MeanSharing != 1.5 {
		t.Errorf("MeanSharing = %g, want 1.5", s.MeanSharing)
	}
	if s.String() == "" {
		t.Error("String() empty")
	}
}

func TestInfiniteCacheSize(t *testing.T) {
	// Cluster 0 = clients {0,1}, cluster 1 = {2,3}.
	tr := mkTrace(
		Request{Client: 0, Object: 10, Size: 1},
		Request{Client: 1, Object: 10, Size: 1}, // obj 10 multi-accessed in cluster 0
		Request{Client: 0, Object: 11, Size: 1}, // one-timer in cluster 0
		Request{Client: 2, Object: 10, Size: 1}, // single access in cluster 1
		Request{Client: 3, Object: 12, Size: 1},
		Request{Client: 3, Object: 12, Size: 1}, // obj 12 multi-accessed in cluster 1
		Request{Client: 2, Object: 12, Size: 1},
	)
	sizes := InfiniteCacheSize(tr, 2, func(c ClientID) int { return int(c) / 2 })
	if sizes[0] != 1 {
		t.Errorf("cluster 0 infinite size = %d, want 1", sizes[0])
	}
	if sizes[1] != 1 {
		t.Errorf("cluster 1 infinite size = %d, want 1", sizes[1])
	}
}

func TestInfiniteCacheSizeIgnoresOutOfRangeClusters(t *testing.T) {
	tr := mkTrace(
		Request{Client: 0, Object: 1, Size: 1},
		Request{Client: 0, Object: 1, Size: 1},
	)
	sizes := InfiniteCacheSize(tr, 1, func(ClientID) int { return 5 })
	if sizes[0] != 0 {
		t.Errorf("out-of-range cluster mapping should contribute nothing, got %d", sizes[0])
	}
}

func TestFitZipfRecoversAlpha(t *testing.T) {
	// Construct an exact Zipf popularity vector and check the fit.
	for _, alpha := range []float64{0.5, 0.7, 1.0} {
		var tr Trace
		n := 500
		for i := 0; i < n; i++ {
			f := int(5000 / powf(float64(i+1), alpha))
			if f < 1 {
				f = 1
			}
			for j := 0; j < f; j++ {
				tr.Requests = append(tr.Requests, Request{Client: 0, Object: ObjectID(i), Size: 1})
			}
		}
		tr.Recount()
		s := Analyze(&tr)
		if diff := s.ZipfAlpha - alpha; diff > 0.12 || diff < -0.12 {
			t.Errorf("alpha=%g: fitted %g (diff %g)", alpha, s.ZipfAlpha, diff)
		}
	}
}

func powf(x, y float64) float64 { return math.Pow(x, y) }
