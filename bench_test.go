// Benchmark harness: one benchmark per figure of the paper's
// evaluation section (§5.2) plus ablations for the design choices of
// §4.  Each figure bench regenerates the figure's full sweep and
// reports headline latency gains as custom metrics, so
//
//	go test -bench=Fig -benchmem
//
// reproduces every table/figure, and
//
//	WEBCACHE_BENCH_SCALE=1.0 go test -bench=Fig2a -benchtime=1x
//
// replays it at the paper's full one-million-request scale.
package webcache_test

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"webcache"
	"webcache/internal/cache"
	"webcache/internal/pastry"
	"webcache/internal/trace"
)

// benchScale reads the workload scale for figure benches (default 5%
// of the paper's size: shapes are stable and the full suite stays
// fast).
func benchScale() float64 {
	if s := os.Getenv("WEBCACHE_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.05
}

// benchFigure runs one figure sweep per iteration and reports the
// first and last series' gains at the smallest cache size as metrics.
func benchFigure(b *testing.B, id string) {
	opts := webcache.FigureOptions{Scale: benchScale(), Seed: 1}
	var fig *webcache.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = webcache.RunFigure(id, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range fig.Series {
		if len(s.Points) > 0 {
			reportMetric(b, 100*s.Points[0].Gain, "gain10%_"+sanitize(s.Label))
		}
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r == ' ' || r == '=' || r == '(' || r == ')':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// Figure 2(a): latency gain vs. proxy cache size, synthetic workload,
// all seven schemes.
func BenchmarkFig2a(b *testing.B) { benchFigure(b, "2a") }

// Figure 2(b): the same sweep on the reconstructed UCB Home-IP trace.
func BenchmarkFig2b(b *testing.B) { benchFigure(b, "2b") }

// Figure 3: sensitivity to the Zipf popularity exponent
// (alpha ∈ {0.5, 0.7, 1.0}) for FC-EC, FC, Hier-GD, SC-EC.
func BenchmarkFig3(b *testing.B) { benchFigure(b, "3") }

// Figure 4: sensitivity to temporal locality (LRU stack ∈ {5%, 20%,
// 60%}) for FC-EC, FC, Hier-GD, SC-EC.
func BenchmarkFig4(b *testing.B) { benchFigure(b, "4") }

// Figure 5(a): Hier-GD vs. proxy-to-proxy latency, Ts/Tc ∈ {2, 5, 10}.
func BenchmarkFig5a(b *testing.B) { benchFigure(b, "5a") }

// Figure 5(b): Hier-GD vs. client-to-proxy latency, Ts/Tl ∈ {5, 10, 20}.
func BenchmarkFig5b(b *testing.B) { benchFigure(b, "5b") }

// Figure 5(c): Hier-GD vs. client cluster size (100..1000 caches).
func BenchmarkFig5c(b *testing.B) { benchFigure(b, "5c") }

// Figure 5(d): Hier-GD vs. proxy cluster size (2, 5, 10 proxies).
func BenchmarkFig5d(b *testing.B) { benchFigure(b, "5d") }

// --- Ablation benches (DESIGN.md §5) ----------------------------------

func benchTrace(b *testing.B) *webcache.Trace {
	b.Helper()
	tr, err := webcache.GenerateWorkload(webcache.WorkloadConfig{
		NumRequests: 100_000,
		NumObjects:  1_500,
		NumClients:  200,
		Seed:        1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// BenchmarkDirectoryExactVsBloom compares Hier-GD's two lookup
// directory representations (§4.2): memory footprint versus
// false-positive-induced wasted P2P lookups.
func BenchmarkDirectoryExactVsBloom(b *testing.B) {
	tr := benchTrace(b)
	for _, kind := range []webcache.DirectoryKind{webcache.DirExact, webcache.DirBloom} {
		b.Run(kind.String(), func(b *testing.B) {
			var res *webcache.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = webcache.Run(tr, webcache.Config{
					Scheme: webcache.HierGD, ProxyCacheFrac: 0.15,
					Directory: kind, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			reportMetric(b, float64(res.DirectoryMemoryBytes), "dir-bytes")
			reportMetric(b, float64(res.DirectoryFalsePositives), "false-lookups")
			reportMetric(b, res.AvgLatency*1000, "mlat")
		})
	}
}

// BenchmarkObjectDiversion measures what leaf-set object diversion
// (§4.3) buys: client-tier hit ratio and premature evictions with the
// mechanism on and off.
func BenchmarkObjectDiversion(b *testing.B) {
	tr := benchTrace(b)
	for _, disable := range []bool{false, true} {
		name := "diversion"
		if disable {
			name = "no-diversion"
		}
		b.Run(name, func(b *testing.B) {
			var res *webcache.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = webcache.Run(tr, webcache.Config{
					Scheme: webcache.HierGD, ProxyCacheFrac: 0.15,
					DisableDiversion: disable, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			reportMetric(b, 100*res.HitRatio(webcache.SrcP2P), "p2p-hit%")
			reportMetric(b, float64(res.P2P.Evictions), "evictions")
			reportMetric(b, float64(res.P2P.Diversions), "diversions")
		})
	}
}

// BenchmarkPiggyback measures the message saving of piggybacked
// destaging (§4.4) versus dedicated proxy->client connections.
func BenchmarkPiggyback(b *testing.B) {
	tr := benchTrace(b)
	for _, disable := range []bool{false, true} {
		name := "piggyback"
		if disable {
			name = "dedicated"
		}
		b.Run(name, func(b *testing.B) {
			var res *webcache.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = webcache.Run(tr, webcache.Config{
					Scheme: webcache.HierGD, ProxyCacheFrac: 0.15,
					DisablePiggyback: disable, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			reportMetric(b, float64(res.P2P.Messages), "messages")
			reportMetric(b, float64(res.P2P.PiggybackSave), "saved")
		})
	}
}

// BenchmarkPastryRouting measures routing throughput and hop counts
// against the ⌈log_2^b N⌉ bound (§4.1).
func BenchmarkPastryRouting(b *testing.B) {
	for _, digit := range []int{2, 4} {
		for _, n := range []int{256, 1024} {
			b.Run(fmt.Sprintf("b=%d/n=%d", digit, n), func(b *testing.B) {
				ov, err := pastry.New(pastry.Config{B: digit, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := ov.JoinN(n, "bench"); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := ov.Route(pastry.HashUint64(uint64(i))); err != nil {
						b.Fatal(err)
					}
				}
				reportMetric(b, ov.Stats().MeanHops, "hops")
			})
		}
	}
}

// BenchmarkPolicies measures raw replacement-policy throughput: the
// greedy-dual heap versus LRU and LFU under a Zipf-ish access pattern.
func BenchmarkPolicies(b *testing.B) {
	mk := map[string]func() cache.Policy{
		"lru":         func() cache.Policy { return cache.NewLRU(1000) },
		"lfu":         func() cache.Policy { return cache.NewLFU(1000) },
		"lfu-perfect": func() cache.Policy { return cache.NewPerfectLFU(1000) },
		"greedy-dual": func() cache.Policy { return cache.NewGreedyDual(1000) },
	}
	for _, name := range []string{"lru", "lfu", "lfu-perfect", "greedy-dual"} {
		ctor := mk[name]
		b.Run(name, func(b *testing.B) {
			p := ctor()
			for i := 0; i < b.N; i++ {
				obj := trace.ObjectID(uint64(i*i) % 5000) // skewed-ish
				if !p.Access(obj) {
					p.Add(cache.Entry{Obj: obj, Size: 1, Cost: 1})
				}
			}
		})
	}
}

// BenchmarkWorkloadGeneration measures the ProWGen generator itself.
func BenchmarkWorkloadGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := webcache.GenerateWorkload(webcache.WorkloadConfig{
			NumRequests: 100_000, NumObjects: 2000, NumClients: 200, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(100_000)
}

// BenchmarkSchemes measures end-to-end replay throughput per scheme
// (requests per second through the simulator).
func BenchmarkSchemes(b *testing.B) {
	tr := benchTrace(b)
	for _, s := range webcache.AllSchemes() {
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := webcache.Run(tr, webcache.Config{
					Scheme: s, ProxyCacheFrac: 0.3, Seed: 1,
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(tr.Len()))
		})
	}
}

// BenchmarkInterProxyDigests compares perfect inter-proxy knowledge
// (the paper's idealization) against Summary-Cache-style Bloom digests
// at several exchange intervals: stale digests lose remote hits and
// waste probes.
func BenchmarkInterProxyDigests(b *testing.B) {
	tr := benchTrace(b)
	for _, interval := range []int{0, 1_000, 10_000, 50_000} {
		name := "perfect"
		if interval > 0 {
			name = fmt.Sprintf("every-%dk", interval/1000)
		}
		b.Run(name, func(b *testing.B) {
			var res *webcache.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = webcache.Run(tr, webcache.Config{
					Scheme: webcache.SC, ProxyCacheFrac: 0.2,
					DigestInterval: interval, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			reportMetric(b, 100*res.HitRatio(webcache.SrcRemoteProxy), "remote-hit%")
			reportMetric(b, float64(res.DigestStaleProbes), "stale-probes")
			reportMetric(b, res.AvgLatency*1000, "mlat")
		})
	}
}

// BenchmarkProxyGDSF compares Hier-GD's paper policy (greedy-dual)
// with the GDSF extension at the proxies.
func BenchmarkProxyGDSF(b *testing.B) {
	tr := benchTrace(b)
	for _, gdsf := range []bool{false, true} {
		name := "greedy-dual"
		if gdsf {
			name = "gdsf"
		}
		b.Run(name, func(b *testing.B) {
			var res *webcache.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = webcache.Run(tr, webcache.Config{
					Scheme: webcache.HierGD, ProxyCacheFrac: 0.15,
					ProxyGDSF: gdsf, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			reportMetric(b, 100*res.HitRatio(webcache.SrcLocalProxy), "proxy-hit%")
			reportMetric(b, res.AvgLatency*1000, "mlat")
		})
	}
}

// BenchmarkVariableSizes replays the extension workload (lognormal
// body + Pareto tail object sizes) through the size-aware policies.
func BenchmarkVariableSizes(b *testing.B) {
	tr, err := webcache.GenerateWorkload(webcache.WorkloadConfig{
		NumRequests: 100_000, NumObjects: 1_500, NumClients: 200,
		VariableSizes: true, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range []webcache.Scheme{webcache.SC, webcache.FCEC, webcache.HierGD} {
		b.Run(s.String(), func(b *testing.B) {
			var res *webcache.Result
			for i := 0; i < b.N; i++ {
				res, err = webcache.Run(tr, webcache.Config{
					Scheme: s, ProxyCacheFrac: 0.2, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			reportMetric(b, res.AvgLatency*1000, "mlat")
			b.SetBytes(int64(tr.Len()))
		})
	}
}

// BenchmarkProximityRouting measures the stretch reduction of
// proximity-aware routing tables (real Pastry's locality heuristic).
func BenchmarkProximityRouting(b *testing.B) {
	for _, aware := range []bool{false, true} {
		name := "oblivious"
		if aware {
			name = "aware"
		}
		b.Run(name, func(b *testing.B) {
			ov, err := pastry.New(pastry.Config{Seed: 1, ProximityAware: aware})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := ov.JoinN(512, "proxbench"); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := ov.Route(pastry.HashUint64(uint64(i))); err != nil {
					b.Fatal(err)
				}
			}
			st := ov.Stats()
			reportMetric(b, st.MeanStretch, "stretch")
			reportMetric(b, st.MeanHops, "hops")
		})
	}
}

// BenchmarkDiversionBalance quantifies §4.3's goal: object diversion
// evens out storage utilization (lower Gini coefficient).
func BenchmarkDiversionBalance(b *testing.B) {
	tr := benchTrace(b)
	for _, disable := range []bool{false, true} {
		name := "diversion"
		if disable {
			name = "no-diversion"
		}
		b.Run(name, func(b *testing.B) {
			var res *webcache.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = webcache.Run(tr, webcache.Config{
					Scheme: webcache.HierGD, ProxyCacheFrac: 0.1,
					DisableDiversion: disable, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			reportMetric(b, float64(res.P2P.Diversions), "diversions")
			reportMetric(b, 100*res.HitRatio(webcache.SrcP2P), "p2p-hit%")
		})
	}
}

// BenchmarkSquirrelVsHierGD quantifies the paper's §6 comparison with
// the Squirrel decentralized web cache: same pooled client caches,
// with and without the proxy tier and inter-proxy cooperation.
func BenchmarkSquirrelVsHierGD(b *testing.B) {
	tr := benchTrace(b)
	for _, s := range []webcache.Scheme{webcache.Squirrel, webcache.HierGD} {
		b.Run(s.String(), func(b *testing.B) {
			var res *webcache.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = webcache.Run(tr, webcache.Config{
					Scheme: s, ProxyCacheFrac: 0.2, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			reportMetric(b, res.AvgLatency*1000, "mlat")
			reportMetric(b, 100*res.HitRatio(webcache.SrcP2P), "p2p-hit%")
		})
	}
}

// BenchmarkBelady reports each online policy's miss overhead over the
// clairvoyant MIN bound on a skewed workload — how much headroom the
// paper's greedy-dual leaves on the table.
func BenchmarkBelady(b *testing.B) {
	tr := benchTrace(b)
	seq := make([]trace.ObjectID, tr.Len())
	for i, r := range tr.Requests {
		seq[i] = r.Object
	}
	const capacity = 150 // ~10% of distinct objects
	opt := cache.ReplaySingleCache(cache.NewBelady(capacity, seq), seq)
	policies := map[string]func() cache.Policy{
		"lru":         func() cache.Policy { return cache.NewLRU(capacity) },
		"lfu-perfect": func() cache.Policy { return cache.NewPerfectLFU(capacity) },
		"greedy-dual": func() cache.Policy { return cache.NewGreedyDual(capacity) },
		"gdsf":        func() cache.Policy { return cache.NewGDSF(capacity) },
	}
	for _, name := range []string{"lru", "lfu-perfect", "greedy-dual", "gdsf"} {
		ctor := policies[name]
		b.Run(name, func(b *testing.B) {
			var misses int
			for i := 0; i < b.N; i++ {
				misses = cache.ReplaySingleCache(ctor(), seq)
			}
			reportMetric(b, float64(misses)/float64(opt), "x-optimal")
			b.SetBytes(int64(len(seq)))
		})
	}
}

// BenchmarkClusterAffinity breaks the paper's statistically-identical-
// populations assumption: as organizational interests become disjoint
// (affinity -> 1), inter-proxy sharing starves while the client-cache
// tier keeps paying off.
func BenchmarkClusterAffinity(b *testing.B) {
	for _, aff := range []float64{0, 0.5, 0.95} {
		tr, err := webcache.GenerateWorkload(webcache.WorkloadConfig{
			NumRequests: 100_000, NumObjects: 2_000, NumClients: 200,
			NumClusters: 2, ClusterAffinity: aff, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("affinity=%.2f", aff), func(b *testing.B) {
			var sc, hg *webcache.Result
			for i := 0; i < b.N; i++ {
				nc, err := webcache.Run(tr, webcache.Config{Scheme: webcache.NC, ProxyCacheFrac: 0.2, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				sc, err = webcache.Run(tr, webcache.Config{Scheme: webcache.SC, ProxyCacheFrac: 0.2, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				hg, err = webcache.Run(tr, webcache.Config{Scheme: webcache.HierGD, ProxyCacheFrac: 0.2, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				reportMetric(b, 100*webcache.Gain(sc.AvgLatency, nc.AvgLatency), "sc-gain%")
				reportMetric(b, 100*webcache.Gain(hg.AvgLatency, nc.AvgLatency), "hiergd-gain%")
			}
		})
	}
}

// BenchmarkHotReplication quantifies the PAST-style replication
// extension: maximum per-client-cache serve load with and without it.
func BenchmarkHotReplication(b *testing.B) {
	tr := benchTrace(b)
	for _, after := range []int{0, 100} {
		name := "single-copy"
		if after > 0 {
			name = fmt.Sprintf("replicate-after-%d", after)
		}
		b.Run(name, func(b *testing.B) {
			var res *webcache.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = webcache.Run(tr, webcache.Config{
					Scheme: webcache.HierGD, ProxyCacheFrac: 0.1,
					ReplicateHotAfter: after, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			reportMetric(b, float64(res.P2PMaxNodeServes), "max-node-serves")
			reportMetric(b, float64(res.P2P.Replications), "replicas")
			reportMetric(b, 100*res.HitRatio(webcache.SrcP2P), "p2p-hit%")
		})
	}
}

// BenchmarkBasePolicy ablates the paper's choice of LFU for the
// non-greedy-dual schemes: the same SC-EC sweep point under four
// baseline replacement policies.
func BenchmarkBasePolicy(b *testing.B) {
	tr := benchTrace(b)
	for _, bp := range []webcache.BasePolicy{
		webcache.BasePerfectLFU, webcache.BaseLFUInCache, webcache.BaseLRU, webcache.BaseGreedyDual,
	} {
		b.Run(bp.String(), func(b *testing.B) {
			var res *webcache.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = webcache.Run(tr, webcache.Config{
					Scheme: webcache.SCEC, ProxyCacheFrac: 0.2, BasePolicy: bp, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			reportMetric(b, res.AvgLatency*1000, "mlat")
			reportMetric(b, 100*res.LocalHitRatio(), "local-hit%")
		})
	}
}
