package webcache_test

import (
	"bytes"
	"strings"
	"testing"

	"webcache"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	tr, err := webcache.GenerateWorkload(webcache.WorkloadConfig{
		NumRequests: 40_000,
		NumObjects:  2_000,
		NumClients:  200,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	nc, err := webcache.Run(tr, webcache.Config{Scheme: webcache.NC, ProxyCacheFrac: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	hg, err := webcache.Run(tr, webcache.Config{Scheme: webcache.HierGD, ProxyCacheFrac: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	g := webcache.Gain(hg.AvgLatency, nc.AvgLatency)
	if g <= 0 || g >= 1 {
		t.Errorf("Hier-GD gain %.3f implausible", g)
	}
}

func TestFacadeSchemesAndParsing(t *testing.T) {
	if len(webcache.AllSchemes()) != 7 {
		t.Errorf("expected 7 schemes")
	}
	s, err := webcache.ParseScheme("hier-gd")
	if err != nil || s != webcache.HierGD {
		t.Errorf("ParseScheme = %v, %v", s, err)
	}
}

func TestFacadeTraceCodecs(t *testing.T) {
	tr, err := webcache.GenerateWorkload(webcache.WorkloadConfig{
		NumRequests: 5_000, NumObjects: 300, NumClients: 20, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := webcache.WriteTraceBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := webcache.ReadTraceBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Errorf("binary round trip lost requests")
	}
	buf.Reset()
	if err := webcache.WriteTraceText(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err = webcache.ReadTraceText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Errorf("text round trip lost requests")
	}
	st := webcache.AnalyzeTrace(tr)
	if st.Requests != tr.Len() {
		t.Errorf("stats requests %d", st.Requests)
	}
}

func TestFacadeNetwork(t *testing.T) {
	m := webcache.DefaultNetwork()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	m2, err := webcache.NewNetworkModel(webcache.NetworkParams{ServerProxyRatio: 5})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Tc <= m.Tc {
		t.Error("smaller ratio should mean larger Tc")
	}
}

func TestFacadeFigure(t *testing.T) {
	fig, err := webcache.RunFigure("5a", webcache.FigureOptions{
		Scale: 0.03,
		Fracs: []float64{0.2},
		Seed:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := webcache.FormatTable(fig)
	if !strings.Contains(out, "Figure 5a") {
		t.Errorf("table output wrong:\n%s", out)
	}
	if md := webcache.FormatMarkdown(fig); !strings.Contains(md, "| cache% |") {
		t.Errorf("markdown output wrong:\n%s", md)
	}
	if len(webcache.FigureIDs()) != 8 {
		t.Error("expected 8 figure ids")
	}
}

func TestFacadeUCB(t *testing.T) {
	tr, err := webcache.GenerateUCBWorkload(webcache.UCBConfig{Scale: 0.005, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("empty UCB trace")
	}
}

func TestFacadePresetsAndSweep(t *testing.T) {
	ps := webcache.WorkloadPresets()
	if len(ps) < 5 {
		t.Fatalf("presets = %d", len(ps))
	}
	tr, err := webcache.GeneratePresetWorkload("dec-isp", 30_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	fig, err := webcache.SweepSchemes(tr, webcache.Config{Seed: 1},
		[]webcache.Scheme{webcache.HierGD}, []float64{0.2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 1 || fig.Series[0].Points[0].Gain <= 0 {
		t.Fatalf("sweep figure wrong: %+v", fig.Series)
	}
	if _, err := webcache.GeneratePresetWorkload("nope", 1000, 1); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestFacadeTraceComposition(t *testing.T) {
	a, err := webcache.GenerateWorkload(webcache.WorkloadConfig{
		NumRequests: 6_000, NumObjects: 300, NumClients: 20, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := webcache.GenerateWorkload(webcache.WorkloadConfig{
		NumRequests: 6_000, NumObjects: 300, NumClients: 20, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := webcache.MergeTraces(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 12_000 || m.NumObjects != 600 {
		t.Fatalf("merged: %d reqs, %d objects", m.Len(), m.NumObjects)
	}
	c, err := webcache.ConcatTraces(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 12_000 {
		t.Fatalf("concat len %d", c.Len())
	}
	sliced, err := webcache.TimeSliceTrace(a, 0, a.Requests[a.Len()-1].Time/2+1)
	if err != nil {
		t.Fatal(err)
	}
	compacted := webcache.CompactTrace(sliced)
	if compacted.NumObjects > sliced.NumObjects {
		t.Error("compaction grew the universe")
	}
	// A merged two-organization trace replays through the simulator.
	res, err := webcache.Run(m, webcache.Config{Scheme: webcache.SC, ProxyCacheFrac: 0.3, ClientsPerCluster: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != m.Len() {
		t.Error("merged trace replay incomplete")
	}
}
